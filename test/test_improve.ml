(* The GLS/VNS improvement engine's contract: every schedule it returns
   is exactly as trustworthy as the construction it started from. The
   qcheck properties drive random small deployments under all three
   interference backends and check (1) the result always replays clean
   on the radio simulator and never regresses the start, (2) the whole
   search is a pure function of (model, schedule, seed, budget), (3)
   quality is monotone in the budget per seed, (4) budget 0 is a
   byte-identical no-op. The daemon test drives the background
   polishing loop by hand through [Daemon.polish_once] and checks that
   upgrades are versioned and monotone while a reply already handed to
   a client stays pinned to the bytes of its version. *)

module Interference = Mlbs_phy.Interference
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Scheduler = Mlbs_core.Scheduler
module Validate = Mlbs_sim.Validate
module Improve = Mlbs_search.Improve
module Codec = Mlbs_server.Codec
module Client = Mlbs_server.Client
module Daemon = Mlbs_server.Daemon

let bytes_of = Codec.schedule_bytes

let temp_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mlbs_improve_%d_%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* ------------------------- qcheck cases ---------------------------- *)

let phys =
  [ Interference.Udg; Interference.Sinr Interference.default_sinr;
    Interference.Multichannel 3 ]

(* A random instance (all three interference backends, sync or
   duty-cycled) plus its Baseline start schedule — the start with the
   most slack, so acceptance paths actually execute. *)
let gen_case =
  QCheck2.Gen.(
    let* n = int_range 8 24 in
    let* seed = int_bound 10000 in
    let* phy = oneofl phys in
    let* rate = option (int_range 2 6) in
    let* search_seed = int_bound 1000 in
    let net = Test_support.small_network ~n ~seed in
    let system =
      match rate with
      | None -> Model.Sync
      | Some rate ->
          Model.Async (Mlbs_dutycycle.Wake_schedule.create ~rate ~n_nodes:n ~seed ())
    in
    let model = Model.create ~phy net system in
    let plan = Scheduler.run model Scheduler.Baseline ~source:0 ~start:1 in
    return (model, plan, search_seed))

let valid_and_never_worse (model, plan, seed) =
  let o = Improve.improve ~seed ~budget:300 model plan in
  (Validate.check model o.Improve.schedule).Validate.ok
  && Schedule.elapsed o.Improve.schedule <= Schedule.elapsed plan
  && o.Improve.improved
     = (Schedule.elapsed o.Improve.schedule < Schedule.elapsed plan)

let deterministic_per_seed (model, plan, seed) =
  let o1 = Improve.improve ~seed ~budget:250 model plan in
  let o2 = Improve.improve ~seed ~budget:250 model plan in
  bytes_of o1.Improve.schedule = bytes_of o2.Improve.schedule
  && o1.Improve.evals = o2.Improve.evals
  && o1.Improve.accepted = o2.Improve.accepted

(* A longer run with the same seed replays the shorter run's trajectory
   as a prefix and the incumbent only ever improves, so quality is
   monotone in the budget. *)
let monotone_in_budget (model, plan, seed) =
  let at budget = Schedule.elapsed (Improve.improve ~seed ~budget model plan).Improve.schedule in
  let e100 = at 100 and e400 = at 400 in
  e400 <= e100 && e100 <= Schedule.elapsed plan

let budget_zero_noop (model, plan, seed) =
  let o = Improve.improve ~seed ~budget:0 model plan in
  bytes_of o.Improve.schedule = bytes_of plan
  && (not o.Improve.improved)
  && o.Improve.evals = 0

let prop ?(count = 40) name f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen_case f)

(* --------------------- daemon background polish -------------------- *)

(* Improver thread off ([improve_budget = 0]); the polishing loop is
   driven deterministically through [polish_once]. *)
let with_daemon f =
  let dir = temp_dir () in
  let socket_path = Filename.concat dir "d.sock" in
  let cfg =
    { (Daemon.default_config ~socket_path) with Daemon.jobs = 1; cache_capacity = 8 }
  in
  let d = Daemon.start cfg in
  let finish () =
    Daemon.stop d;
    Daemon.wait d;
    rm_rf dir
  in
  Fun.protect ~finally:finish (fun () -> f d socket_path)

let baseline_request =
  {
    Codec.policy = Codec.Baseline;
    rate = None;
    seed = 7;
    topology = Codec.Gen { n = 60; radius = 10.0 };
    source = None;
    start = 1;
    model = Interference.Udg;
  }

let request_ok c req =
  match Client.request_retry c req with
  | Client.Ok ok -> ok
  | Client.Rejected _ -> Alcotest.fail "request shed"
  | Client.Error m -> Alcotest.failf "request failed: %s" m

(* Polish until an upgrade installs, bounded by the daemon's own
   per-entry attempt cap. *)
let rec polish_until d ~budget = function
  | 0 -> false
  | n -> Daemon.polish_once d ~budget || polish_until d ~budget (n - 1)

let test_polish_pinned_reply () =
  with_daemon @@ fun d socket ->
  let c, _, _ = Client.connect (Client.Unix_socket socket) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let req = baseline_request in
  let ok0 = request_ok c req in
  Alcotest.(check int) "first reply is the deterministic construction" 0
    ok0.Codec.version;
  let pinned = bytes_of ok0.Codec.schedule in
  Alcotest.(check bool) "an upgrade installs" true (polish_until d ~budget:400 12);
  let ok1 = request_ok c req in
  Alcotest.(check bool) "served version advanced" true (ok1.Codec.version > 0);
  Alcotest.(check bool) "upgrade is a cache hit" true ok1.Codec.cache_hit;
  Alcotest.(check bool) "upgrade strictly better" true
    (Schedule.elapsed ok1.Codec.schedule < Schedule.elapsed ok0.Codec.schedule);
  let report = Validate.check (Daemon.model_of req) ok1.Codec.schedule in
  Alcotest.(check bool) "upgrade replays clean" true report.Validate.ok;
  (* The reply already handed out is pinned to its version: polishing
     installed a new entry, it did not mutate the served value. *)
  Alcotest.(check string) "pinned v0 reply unchanged" pinned (bytes_of ok0.Codec.schedule);
  let _, local = Daemon.solve req in
  Alcotest.(check string) "pinned v0 reply = direct scheduler" (bytes_of local) pinned;
  (* Versions only ever go up; a further upgrade (if any) outranks v1. *)
  let v1 = ok1.Codec.version in
  let _ = polish_until d ~budget:400 12 in
  let ok2 = request_ok c req in
  Alcotest.(check bool) "versions are monotone" true (ok2.Codec.version >= v1);
  Alcotest.(check bool) "later version never worse" true
    (Schedule.elapsed ok2.Codec.schedule <= Schedule.elapsed ok1.Codec.schedule)

(* Budget 0 in the daemon config means no improver thread exists and
   every reply stays version 0 regardless of how often it is served. *)
let test_budget_zero_daemon () =
  with_daemon @@ fun _d socket ->
  let c, _, _ = Client.connect (Client.Unix_socket socket) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let ok0 = request_ok c baseline_request in
  let ok1 = request_ok c baseline_request in
  Alcotest.(check int) "cold version 0" 0 ok0.Codec.version;
  Alcotest.(check int) "hit version 0" 0 ok1.Codec.version;
  Alcotest.(check string) "hit byte-identical" (bytes_of ok0.Codec.schedule)
    (bytes_of ok1.Codec.schedule)

let () =
  Alcotest.run "improve"
    [
      ( "engine",
        [
          prop "result replays clean and never regresses" valid_and_never_worse;
          prop "deterministic per (model, schedule, seed, budget)" deterministic_per_seed;
          prop ~count:25 "quality monotone in budget" monotone_in_budget;
          prop "budget 0 is a byte-identical no-op" budget_zero_noop;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "polish upgrades are versioned; replies stay pinned" `Slow
            test_polish_pinned_reply;
          Alcotest.test_case "improve budget 0 serves version 0 forever" `Quick
            test_budget_zero_daemon;
        ] );
    ]
