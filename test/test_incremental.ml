(* The incremental search state must be indistinguishable, query for
   query, from the from-scratch recomputations it replaces: a random
   walk of interleaved [apply]/[undo] over random UDG deployments is
   compared at every step against [Model]/[Mcounter] evaluated on the
   materialised informed set, and the carried hash against
   [Bitset.hash]. *)

module Bitset = Mlbs_util.Bitset
module Model = Mlbs_core.Model
module Choices = Mlbs_core.Choices
module Istate = Mlbs_core.Istate
module Mcounter = Mlbs_core.Mcounter

(* Naive frontier count: |N(u) ∩ W̄| straight off the graph. *)
let naive_uncov model ~w u = Model.n_receivers model ~w u

let check_agrees ~ctx model st ~w ~slot =
  let n = Model.n_nodes model in
  if not (Bitset.equal (Istate.w st) w) then
    Alcotest.failf "%s: informed set diverged" ctx;
  Alcotest.(check int) (ctx ^ ": whash") (Bitset.hash w) (Istate.whash st);
  Alcotest.(check int) (ctx ^ ": n_informed") (Bitset.cardinal w) (Istate.n_informed st);
  Alcotest.(check bool) (ctx ^ ": complete") (Model.complete model ~w) (Istate.complete st);
  for u = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "%s: uncov %d" ctx u)
      (naive_uncov model ~w u) (Istate.uncov st u)
  done;
  Alcotest.(check int) (ctx ^ ": lb") (Mcounter.hop_lower_bound model ~w) (Istate.lb st);
  Alcotest.(check (list int))
    (ctx ^ ": candidates")
    (Model.candidates model ~w ~slot)
    (Istate.candidates st ~slot);
  Alcotest.(check (list (list int)))
    (ctx ^ ": greedy classes")
    (Model.greedy_classes model ~w ~slot)
    (Istate.greedy_classes st ~slot);
  Alcotest.(check (option int))
    (ctx ^ ": next active slot")
    (Model.next_active_slot model ~w ~after:slot)
    (Istate.next_active_slot st ~after:slot);
  List.iter
    (fun space ->
      Alcotest.(check (list (list int)))
        (ctx ^ ": enumerate")
        (Choices.enumerate model space ~w ~slot)
        (Choices.enumerate_incremental st space ~slot))
    [ Choices.Greedy; Choices.All { max_sets = 32 } ]

(* Random walk: at each step either undo (when possible) or apply one
   enumerated choice, checking full agreement after every move. The
   stack holds the naive (copied) informed sets for comparison and for
   slot bookkeeping. *)
let walk_agrees ((model, _seed), moves) =
  let n = Model.n_nodes model in
  let st = Istate.create n in
  let w0 = Model.initial_w model ~source:0 in
  Istate.reset st model ~w:w0;
  let stack = ref [ (Bitset.copy w0, 1) ] in
  check_agrees ~ctx:"initial" model st ~w:w0 ~slot:1;
  List.iter
    (fun r ->
      let w, slot = List.hd !stack in
      if r mod 4 = 0 && Istate.depth st > 0 then begin
        Istate.undo st;
        stack := List.tl !stack;
        let w', slot' = List.hd !stack in
        check_agrees ~ctx:"after undo" model st ~w:w' ~slot:slot'
      end
      else if not (Model.complete model ~w) then begin
        let choices = Choices.enumerate model Choices.Greedy ~w ~slot in
        match choices with
        | [] ->
            (* No awake candidate this slot (async lull): advance time. *)
            stack := (w, slot + 1) :: List.tl !stack
        | _ ->
            (* probe_child must agree with an apply/undo round-trip for
               every enumerated choice, not just the one taken. *)
            List.iter
              (fun c ->
                let plb, pcov = Istate.probe_child st ~senders:c in
                Istate.apply st ~senders:c;
                Alcotest.(check int) "probe lb" (Istate.lb st) plb;
                Alcotest.(check int)
                  "probe cov"
                  (List.length (Istate.last_added st))
                  pcov;
                Istate.undo st)
              choices;
            let senders = List.nth choices (abs r mod List.length choices) in
            Istate.apply st ~senders;
            Alcotest.(check (list int))
              "last_added matches newly_informed"
              (List.sort compare (Model.newly_informed model ~w ~senders))
              (List.sort compare (Istate.last_added st));
            let w' = Model.apply model ~w ~senders in
            stack := (w', slot + 1) :: !stack;
            check_agrees ~ctx:"after apply" model st ~w:w' ~slot:(slot + 1)
      end)
    moves;
  (* Full rewind lands exactly back on the root state. *)
  Istate.rewind st ~depth:0;
  check_agrees ~ctx:"after rewind" model st ~w:w0 ~slot:1;
  true

let prop ?(count = 60) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_walk gen_model =
  QCheck2.Gen.(pair gen_model (list_size (int_bound 25) (int_bound 1000)))

(* hash_flip: flipping any bit through the carried-hash update equals
   re-hashing the mutated set. *)
let hash_flip_agrees (members, i) =
  let s = Bitset.create 80 in
  List.iter (Bitset.add s) members;
  let h = Bitset.hash s in
  let h' = Bitset.hash_flip s i h in
  (if Bitset.mem s i then Bitset.remove s i else Bitset.add s i);
  h' = Bitset.hash s

(* hash_union: carrying the hash across a union equals re-hashing the
   materialised union, and equal_union recognises exactly it. *)
let hash_union_agrees (s_members, cov_members) =
  let s = Bitset.of_list 80 s_members in
  let cov = Bitset.of_list 80 cov_members in
  let u = Bitset.union s cov in
  Bitset.hash_union s cov (Bitset.hash s) = Bitset.hash u
  && Bitset.equal_union u s cov
  && (Bitset.equal u s || not (Bitset.equal_union s s cov))

let () =
  Alcotest.run "incremental"
    [
      ( "istate",
        [
          prop "sync walk agrees with naive recompute" (gen_walk Test_support.gen_sync_model)
            walk_agrees;
          prop "async walk agrees with naive recompute"
            (gen_walk Test_support.gen_async_model) walk_agrees;
        ] );
      ( "hash",
        [
          prop ~count:300 "hash_flip = hash of flipped set"
            QCheck2.Gen.(
              pair (list_size (int_bound 60) (int_bound 79)) (int_bound 79))
            hash_flip_agrees;
          prop ~count:300 "hash_union = hash of union"
            QCheck2.Gen.(
              pair
                (list_size (int_bound 60) (int_bound 79))
                (list_size (int_bound 60) (int_bound 79)))
            hash_union_agrees;
        ] );
    ]
