(* Coverage for the smaller core APIs: Choices, Trace, the Opt/Gopt
   wrappers, and async exact search on hand-built wake schedules. *)

module Bitset = Mlbs_util.Bitset
module Model = Mlbs_core.Model
module Choices = Mlbs_core.Choices
module Trace = Mlbs_core.Trace
module Opt = Mlbs_core.Opt
module Gopt = Mlbs_core.Gopt
module Mcounter = Mlbs_core.Mcounter
module Schedule = Mlbs_core.Schedule
module Fixtures = Mlbs_workload.Fixtures
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Point = Mlbs_geom.Point

let fig1_model () = Model.create Fixtures.fig1.Fixtures.net Model.Sync

(* ---------------------------- choices ------------------------------ *)

let test_choices_greedy_equals_model () =
  let m = fig1_model () in
  let w = Bitset.of_list 12 [ 11; 0; 1; 2 ] in
  Alcotest.(check (list (list int))) "same classes"
    (Model.greedy_classes m ~w ~slot:1)
    (Choices.enumerate m Choices.Greedy ~w ~slot:1)

let test_choices_all_are_maximal_and_conflict_free () =
  let m = fig1_model () in
  let w = Bitset.of_list 12 [ 11; 0; 1; 2; 3; 4; 10 ] in
  let sets = Choices.enumerate m (Choices.All { max_sets = 64 }) ~w ~slot:1 in
  let cands = Model.candidates m ~w ~slot:1 in
  Alcotest.(check bool) "nonempty" true (sets <> []);
  List.iter
    (fun s ->
      (* Conflict-free internally... *)
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              if u <> v then
                Alcotest.(check bool) "no conflict" false (Model.conflicts m ~w u v))
            s)
        s;
      (* ...and maximal: every other candidate conflicts with a member. *)
      List.iter
        (fun c ->
          if not (List.mem c s) then
            Alcotest.(check bool)
              (Printf.sprintf "candidate %d blocked" c)
              true
              (List.exists (fun u -> Model.conflicts m ~w u c) s))
        cands)
    sets

let test_choices_all_cap_respected () =
  let m = fig1_model () in
  let w = Bitset.of_list 12 [ 11; 0; 1; 2; 3; 4; 10 ] in
  let sets = Choices.enumerate m (Choices.All { max_sets = 1 }) ~w ~slot:1 in
  Alcotest.(check int) "capped" 1 (List.length sets)

let test_choices_empty_when_complete () =
  let m = fig1_model () in
  let w = Bitset.full 12 in
  Alcotest.(check (list (list int))) "no candidates" []
    (Choices.enumerate m Choices.Greedy ~w ~slot:1)

(* ----------------------------- trace ------------------------------- *)

let test_trace_schedule_consistency () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let t = Trace.run m Choices.Greedy ~source ~start in
  (* One row per schedule step, and each row's chosen class matches the
     step's senders. *)
  let steps = Schedule.steps t.Trace.schedule in
  Alcotest.(check int) "row count" (List.length steps) (List.length t.Trace.rows);
  List.iter2
    (fun row step ->
      let chosen = (List.nth row.Trace.classes row.Trace.chosen).Trace.members in
      Alcotest.(check (list int)) "chosen = senders" step.Schedule.senders chosen;
      Alcotest.(check (list int)) "advance = informed" step.Schedule.informed
        row.Trace.advance;
      Alcotest.(check int) "slots align" step.Schedule.slot row.Trace.slot)
    t.Trace.rows steps

let test_trace_chosen_minimizes_m () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let t = Trace.run m Choices.Greedy ~source ~start in
  List.iter
    (fun row ->
      let best =
        List.fold_left (fun acc e -> min acc e.Trace.m_value) max_int row.Trace.classes
      in
      Alcotest.(check int) "chosen has minimal M" best
        (List.nth row.Trace.classes row.Trace.chosen).Trace.m_value)
    t.Trace.rows

let test_trace_render_custom_names () =
  let { Fixtures.net; source; start; name } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let t = Trace.run m Choices.Greedy ~source ~start in
  let s = Trace.render ~node_name:name t in
  Alcotest.(check bool) "uses 's' label" true
    (String.length s > 0
    &&
    let found = ref false in
    String.iteri (fun i c -> if c = 's' && i > 0 && s.[i - 1] = '{' then found := true) s;
    !found)

(* ----------------------- opt/gopt wrappers ------------------------- *)

let test_finish_wrappers_agree_with_plans () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let ge = Gopt.finish m ~source ~start in
  let gp = Gopt.plan m ~source ~start in
  Alcotest.(check int) "gopt" (Schedule.finish gp) ge.Mcounter.finish;
  let oe = Opt.finish m ~source ~start in
  let op = Opt.plan m ~source ~start in
  Alcotest.(check int) "opt" (Schedule.finish op) oe.Mcounter.finish;
  Alcotest.(check bool) "opt <= gopt" true (oe.Mcounter.finish <= ge.Mcounter.finish)

(* ---------------------- async exact search ------------------------- *)

(* A 4-node path 0-1-2-3 where the scheduler must decide at slot 1
   whether to use node 1's rare wake: schedules are built so that greedy
   relaying is forced through specific slots, making the exact finish
   predictable by hand:
     T(0) = {1}, T(1) = {2}, T(2) = {4}, T(3) = {9}.
   0 sends at 1 (informs 1); 1 sends at 2 (informs 2); 2 sends at 4
   (informs 3): finish = 4. *)
let test_async_exact_path () =
  let points = Array.init 4 (fun i -> Point.v (float_of_int i *. 8.) 0.) in
  let net = Mlbs_wsn.Network.create ~radius:10. points in
  let sched = Wake_schedule.of_explicit ~rate:10 [| [ 1 ]; [ 2 ]; [ 4 ]; [ 9 ] |] in
  let m = Model.create net (Model.Async sched) in
  let e =
    Mcounter.evaluate m Choices.Greedy
      ~budget:{ Mcounter.max_states = 10000; lookahead = 2; beam = 4; mode = Classic }
      ~w:(Model.initial_w m ~source:0) ~slot:1
  in
  Alcotest.(check bool) "exact" true e.Mcounter.exact;
  Alcotest.(check int) "finish" 4 e.Mcounter.finish;
  let plan =
    Mcounter.plan m Choices.Greedy
      ~budget:{ Mcounter.max_states = 10000; lookahead = 2; beam = 4; mode = Classic }
      ~source:0 ~start:1
  in
  Alcotest.(check (list int)) "transmission slots" [ 1; 2; 4 ]
    (List.map (fun s -> s.Schedule.slot) (Schedule.steps plan))

(* A missed wake costs a full frame: same path, but the source's first
   wake is after node 1's slot-2 wake, so node 1 cannot relay before its
   next wake at slot 12. *)
let test_async_missed_wake () =
  let points = Array.init 3 (fun i -> Point.v (float_of_int i *. 8.) 0.) in
  let net = Mlbs_wsn.Network.create ~radius:10. points in
  let sched = Wake_schedule.of_explicit ~rate:10 [| [ 3 ]; [ 2; 12 ]; [ 20 ] |] in
  let m = Model.create net (Model.Async sched) in
  let e =
    Mcounter.evaluate m Choices.Greedy
      ~budget:{ Mcounter.max_states = 10000; lookahead = 2; beam = 4; mode = Classic }
      ~w:(Model.initial_w m ~source:0) ~slot:1
  in
  (* 0 wakes at 3 (informs 1); 1's next wake is 12 (informs 2): 12. *)
  Alcotest.(check int) "finish" 12 e.Mcounter.finish

let () =
  Alcotest.run "core_extras"
    [
      ( "choices",
        [
          Alcotest.test_case "greedy = model classes" `Quick test_choices_greedy_equals_model;
          Alcotest.test_case "all: maximal conflict-free" `Quick
            test_choices_all_are_maximal_and_conflict_free;
          Alcotest.test_case "all: cap" `Quick test_choices_all_cap_respected;
          Alcotest.test_case "complete: empty" `Quick test_choices_empty_when_complete;
        ] );
      ( "trace",
        [
          Alcotest.test_case "schedule consistency" `Quick test_trace_schedule_consistency;
          Alcotest.test_case "chosen minimizes M" `Quick test_trace_chosen_minimizes_m;
          Alcotest.test_case "custom names" `Quick test_trace_render_custom_names;
        ] );
      ( "wrappers",
        [ Alcotest.test_case "finish = plan finish" `Quick test_finish_wrappers_agree_with_plans ] );
      ( "async exact",
        [
          Alcotest.test_case "path schedule" `Quick test_async_exact_path;
          Alcotest.test_case "missed wake" `Quick test_async_missed_wake;
        ] );
    ]
