module Stats = Mlbs_util.Stats
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Fixtures = Mlbs_workload.Fixtures
module Config = Mlbs_workload.Config
module Experiment = Mlbs_workload.Experiment
module Figures = Mlbs_workload.Figures
module Report = Mlbs_workload.Report

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

(* ----------------------- golden traces ----------------------------- *)

let test_table2_golden () =
  let t = Figures.table2 () in
  (* Table II's rows: s=node 1 relays to {2,3}; then C1={2} (selected,
     finishing at 2) beats C2={3}; P(A)=2. *)
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle t))
    [
      "C1={1}  M=2  <- selected";
      "A={2,3}";
      "C1={2}  M=2  <- selected";
      "C2={3}  M=3";
      "A={4,5}";
      "P(A)=2";
    ]

let test_table3_golden () =
  let t = Figures.table3 () in
  (* Table III's headline rows: the three colors at W={s,0,1,2} with
     C2={1} selected (M=3), then {0,4} finishing the broadcast. *)
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle t))
    [
      "C1={s}  M=3  <- selected";
      "A={0,1,2}";
      "C1={0}  M=4";
      "C2={1}  M=3  <- selected";
      "C3={2}  M=4";
      "A={3,4,10}";
      "C1={0,4}  M=3  <- selected";
      "A={5,6,7,8,9}";
      "P(A)=3";
    ]

let test_table4_golden () =
  let t = Figures.table4 () in
  (* Table IV: start at t_s=2, advance at slot 4 choosing node 2's color
     (M=4) over node 3's (whose M is pushed past r+3=13); P(A)=4. *)
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle t))
    [
      "t=2"; "A={2,3}"; "t=4"; "C1={2}  M=4  <- selected"; "C2={3}  M=13"; "P(A)=4";
    ]

(* --------------------------- fixtures ------------------------------ *)

let test_fixture_shapes () =
  Alcotest.(check int) "fig1 size" 12 (Mlbs_wsn.Network.n_nodes Fixtures.fig1.Fixtures.net);
  Alcotest.(check int) "fig2 size" 5 (Mlbs_wsn.Network.n_nodes Fixtures.fig2.Fixtures.net);
  Alcotest.(check string) "fig1 source label" "s" (Fixtures.fig1.Fixtures.name 11);
  Alcotest.(check string) "fig2 labels shift" "1" (Fixtures.fig2.Fixtures.name 0);
  let _, sched = Fixtures.fig2_dc in
  Alcotest.(check int) "dc rate" 10 (Mlbs_dutycycle.Wake_schedule.rate sched)

(* ------------------------- experiments ----------------------------- *)

let tiny_cfg =
  {
    Config.quick with
    Config.node_counts = [ 40 ];
    seeds = [ 1; 2 ];
    budget = { Mlbs_core.Mcounter.max_states = 300; lookahead = 1; beam = 3; mode = Classic };
  }

let test_make_instance_deterministic () =
  let a = Experiment.make_instance tiny_cfg ~n:50 ~seed:1 in
  let b = Experiment.make_instance tiny_cfg ~n:50 ~seed:1 in
  Alcotest.(check int) "same source" a.Experiment.source b.Experiment.source;
  Alcotest.(check int) "same depth" a.Experiment.d b.Experiment.d;
  Alcotest.(check bool) "positive depth" true (a.Experiment.d > 0)

let test_run_sync_measurements () =
  let inst = Experiment.make_instance tiny_cfg ~n:50 ~seed:1 in
  let ms = Experiment.run_sync tiny_cfg inst in
  Alcotest.(check (list string)) "policy order"
    [ "26-approx"; "OPT"; "G-OPT"; "E-model" ]
    (List.map (fun m -> m.Experiment.policy) ms);
  List.iter
    (fun m ->
      Alcotest.(check bool) (m.Experiment.policy ^ " valid") true m.Experiment.valid;
      Alcotest.(check bool) (m.Experiment.policy ^ " positive") true (m.Experiment.elapsed > 0))
    ms;
  (* OPT is reported as min(OPT-search, G-OPT). *)
  let find p = List.find (fun m -> m.Experiment.policy = p) ms in
  Alcotest.(check bool) "OPT <= G-OPT" true
    ((find "OPT").Experiment.elapsed <= (find "G-OPT").Experiment.elapsed)

let test_run_async_measurements () =
  let inst = Experiment.make_instance tiny_cfg ~n:50 ~seed:1 in
  let ms = Experiment.run_async tiny_cfg ~rate:5 ~inst_seed:1 inst in
  Alcotest.(check (list string)) "policy order"
    [ "17-approx"; "OPT"; "G-OPT"; "E-model" ]
    (List.map (fun m -> m.Experiment.policy) ms);
  List.iter
    (fun m -> Alcotest.(check bool) (m.Experiment.policy ^ " valid") true m.Experiment.valid)
    ms

let test_mean_by_policy () =
  let mk policy elapsed = { Experiment.policy; elapsed; transmissions = 0; valid = true } in
  let runs = [ [ mk "A" 2; mk "B" 10 ]; [ mk "A" 4; mk "B" 20 ] ] in
  Alcotest.(check (list (pair string (float 1e-9)))) "means"
    [ ("A", 3.); ("B", 15.) ]
    (Experiment.mean_by_policy runs)

(* --------------------------- figures ------------------------------- *)

let test_fig3_structure () =
  let f = Figures.fig3 tiny_cfg in
  Alcotest.(check string) "id" "fig3" f.Figures.id;
  Alcotest.(check int) "one density" 1 (List.length f.Figures.x_values);
  Alcotest.(check (list string)) "series labels"
    [ "26-approx"; "OPT"; "G-OPT"; "E-model"; "OPT-analysis (d+2)" ]
    (List.map (fun s -> s.Figures.label) f.Figures.series);
  List.iter
    (fun s ->
      Alcotest.(check int) (s.Figures.label ^ " arity") 1 (List.length s.Figures.values))
    f.Figures.series

let test_fig5_analytical () =
  let f = Figures.fig5 tiny_cfg in
  Alcotest.(check (list string)) "series"
    [ "OPT-analysis (2r(d+2))"; "Bound of [12] (17kd)" ]
    (List.map (fun s -> s.Figures.label) f.Figures.series);
  (* 17kd with k=2r dominates 2r(d+2) for d >= 3. *)
  let v label =
    List.hd (List.find (fun s -> s.Figures.label = label) f.Figures.series).Figures.values
  in
  Alcotest.(check bool) "ordering" true
    (v "Bound of [12] (17kd)" > v "OPT-analysis (2r(d+2))")

let test_improvements () =
  let f =
    {
      Figures.id = "x";
      title = "t";
      x_label = "d";
      x_values = [ 0.1; 0.2 ];
      series =
        [
          { Figures.label = "base"; values = [ 10.; 20. ] };
          { Figures.label = "ours"; values = [ 5.; 5. ] };
        ];
    }
  in
  match Figures.improvements f ~baseline:"base" with
  | [ ("ours", frac) ] -> Alcotest.(check (float 1e-9)) "mean improvement" 0.625 frac
  | _ -> Alcotest.fail "unexpected improvements shape"

let test_report_render () =
  let f = Figures.fig3 tiny_cfg in
  let r = Report.render_figure f in
  Alcotest.(check bool) "has improvement line" true (contains ~needle:"vs 26-approx" r);
  let csv = Report.figure_csv f in
  Alcotest.(check bool) "csv header" true (contains ~needle:"density,26-approx" csv)

let test_csv_roundtrip_file () =
  let dir = Filename.temp_file "mlbs" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let f = Figures.fig5 tiny_cfg in
  let path = Report.write_csv ~dir f in
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check bool) "header written" true (contains ~needle:"density" line)

(* --------------------------- ablations ----------------------------- *)

let ablation_cfg = { tiny_cfg with Config.seeds = [ 1 ] }

let rows tab = List.length (String.split_on_char '\n' (Mlbs_util.Tab.render tab))

let test_ablation_tables_render () =
  let module Ablation = Mlbs_workload.Ablation in
  List.iter
    (fun (name, tab) ->
      Alcotest.(check bool) (name ^ " non-trivial") true (rows tab > 5))
    [
      ("selector", Ablation.selector_table ablation_cfg ~n:50);
      ("wake family", Ablation.wake_family_table ablation_cfg ~n:50 ~rate:5);
      ("lookahead", Ablation.lookahead_table ablation_cfg ~n:50);
      ("relay set", Ablation.relay_set_table ablation_cfg ~n:50);
      ("localized sync", Ablation.localized_table ablation_cfg ~n:50 ~rate:None);
      ("localized async", Ablation.localized_table ablation_cfg ~n:50 ~rate:(Some 5));
      ("shapes", Ablation.shape_table ablation_cfg ~n:50);
      ("protocols", Ablation.protocol_table ablation_cfg ~n:50);
      ("resilience", Ablation.resilience_table ablation_cfg ~n:50 ~kill_fraction:0.1);
    ]

let test_plan_with_selector_valid () =
  let module Ablation = Mlbs_workload.Ablation in
  let inst = Experiment.make_instance ablation_cfg ~n:50 ~seed:2 in
  let model = Model.create inst.Experiment.net Model.Sync in
  List.iter
    (fun sel ->
      let plan =
        Ablation.plan_with_selector model sel ~source:inst.Experiment.source ~start:1
      in
      Alcotest.(check bool) "valid" true (Mlbs_sim.Validate.check model plan).Mlbs_sim.Validate.ok)
    [ Ablation.By_emodel; Ablation.By_hop_to_source; Ablation.First_class ];
  let plan =
    Ablation.plan_with_id_order model ~source:inst.Experiment.source ~start:1
  in
  Alcotest.(check bool) "id-order valid" true
    (Mlbs_sim.Validate.check model plan).Mlbs_sim.Validate.ok

let test_chart_in_render () =
  let f = Figures.fig3 tiny_cfg in
  let chart = Report.figure_chart f in
  Alcotest.(check bool) "chart nonempty" true (String.length chart > 0);
  Alcotest.(check bool) "chart embedded in render" true
    (contains ~needle:"a = 26-approx" (Report.render_figure f))

let () =
  Alcotest.run "workload"
    [
      ( "golden traces",
        [
          Alcotest.test_case "table II" `Quick test_table2_golden;
          Alcotest.test_case "table III" `Quick test_table3_golden;
          Alcotest.test_case "table IV" `Quick test_table4_golden;
        ] );
      ("fixtures", [ Alcotest.test_case "shapes" `Quick test_fixture_shapes ]);
      ( "experiment",
        [
          Alcotest.test_case "deterministic instance" `Quick test_make_instance_deterministic;
          Alcotest.test_case "sync measurements" `Quick test_run_sync_measurements;
          Alcotest.test_case "async measurements" `Quick test_run_async_measurements;
          Alcotest.test_case "mean by policy" `Quick test_mean_by_policy;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig3 structure" `Quick test_fig3_structure;
          Alcotest.test_case "fig5 analytical" `Quick test_fig5_analytical;
          Alcotest.test_case "improvements" `Quick test_improvements;
          Alcotest.test_case "report render" `Quick test_report_render;
          Alcotest.test_case "csv file" `Quick test_csv_roundtrip_file;
          Alcotest.test_case "chart in render" `Quick test_chart_in_render;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "tables render" `Quick test_ablation_tables_render;
          Alcotest.test_case "selectors valid" `Quick test_plan_with_selector_valid;
        ] );
    ]
