(* The pluggable interference subsystem: UDG extraction equivalence,
   SINR conflict/zone semantics, multi-channel grouping, and validator
   acceptance of every centralized planner under every backend. *)

module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Network = Mlbs_wsn.Network
module Point = Mlbs_geom.Point
module Interference = Mlbs_phy.Interference
module Udg = Mlbs_phy.Udg
module Model = Mlbs_core.Model
module Scheduler = Mlbs_core.Scheduler
module Schedule = Mlbs_core.Schedule
module Baseline_cds = Mlbs_core.Baseline_cds
module Baseline26 = Mlbs_core.Baseline26
module Baseline17 = Mlbs_core.Baseline17
module Validate = Mlbs_sim.Validate
module Fixtures = Mlbs_workload.Fixtures
module Codec = Mlbs_server.Codec

let schedule_eq name a b =
  Alcotest.(check string) name (Codec.schedule_bytes a) (Codec.schedule_bytes b)

(* Generator: a small connected deployment plus a random informed set
   containing node 0 (so sender pairs can be drawn from it). *)
let gen_net_w =
  QCheck2.Gen.(
    let* n = int_range 5 16 in
    let* seed = int_bound 100_000 in
    let net = Test_support.small_network ~n ~seed in
    let n = Network.n_nodes net in
    let* mask = list_repeat n bool in
    let w = Bitset.create n in
    Bitset.add w 0;
    List.iteri (fun i b -> if b then Bitset.add w i) mask;
    return (net, w))

let print_net_w (net, w) =
  Printf.sprintf "n=%d informed=%s" (Network.n_nodes net)
    (String.concat "," (List.map string_of_int (Bitset.elements w)))

let informed_pairs w =
  let members = Bitset.elements w in
  List.concat_map (fun u -> List.map (fun v -> (u, v)) members) members

let backends =
  Interference.
    [ Udg; Sinr default_sinr; Sinr { default_sinr with beta = 4.0 };
      Multichannel 1; Multichannel 2; Multichannel 3 ]

(* ------------------- UDG extraction equivalence -------------------- *)

(* The extracted [Udg.conflicts] against the paper's predicate spelled
   out naively: N(u) ∩ N(v) ∩ W̄ ≠ ∅. *)
let qcheck_udg_spec =
  QCheck2.Test.make ~name:"Udg.conflicts = naive N(u) ∩ N(v) ∩ W̄ test" ~count:100 ~print:print_net_w
    gen_net_w (fun (net, w) ->
      let g = Network.graph net in
      let n = Graph.n_nodes g in
      let uninformed = Bitset.complement w in
      let naive u v =
        u <> v
        && List.exists
             (fun x ->
               Graph.mem_edge g u x && Graph.mem_edge g v x && Bitset.mem uninformed x)
             (List.init n Fun.id)
      in
      List.for_all
        (fun (u, v) -> Udg.conflicts g ~uninformed u v = naive u v)
        (informed_pairs w))

(* [Model.conflicts] on a default model still answers through the
   extracted backend — the old inline predicate and the new path are
   one code path, and must agree with the spec above. *)
let qcheck_model_dispatch =
  QCheck2.Test.make ~name:"Model.conflicts dispatches to the Udg backend" ~count:50 ~print:print_net_w
    gen_net_w (fun (net, w) ->
      let m = Model.create net Model.Sync in
      let g = Network.graph net in
      let uninformed = Bitset.complement w in
      List.for_all
        (fun (u, v) -> Model.conflicts m ~w u v = Udg.conflicts g ~uninformed u v)
        (informed_pairs w))

(* ----------------------- conflict symmetry ------------------------- *)

let qcheck_symmetry =
  QCheck2.Test.make ~name:"conflicts symmetric and irreflexive (all backends)"
    ~count:60 ~print:print_net_w gen_net_w (fun (net, w) ->
      let uninformed = Bitset.complement w in
      List.for_all
        (fun phy ->
          let inst = Interference.bind phy net in
          List.for_all
            (fun (u, v) ->
              Interference.conflicts inst ~uninformed u v
              = Interference.conflicts inst ~uninformed v u
              && not (Interference.conflicts inst ~uninformed u u))
            (informed_pairs w))
        backends)

(* --------------------- SINR β monotonicity ------------------------- *)

(* Raising the decode threshold only adds conflicts: every decode
   condition is of the form P ≥ β·(noise + I), anti-monotone in β. *)
let qcheck_beta_monotone =
  QCheck2.Test.make ~name:"sinr: conflicts monotone in beta" ~count:60 ~print:print_net_w gen_net_w
    (fun (net, w) ->
      let uninformed = Bitset.complement w in
      let inst b =
        Interference.(bind (Sinr { default_sinr with beta = b }) net)
      in
      let lo = inst 1.0 and mid = inst 2.0 and hi = inst 5.0 in
      List.for_all
        (fun (u, v) ->
          let c b = Interference.conflicts b ~uninformed u v in
          (not (c lo) || c mid) && (not (c mid) || c hi))
        (informed_pairs w))

(* ---------------------- SINR α attenuation ------------------------- *)

(* u → x at 6 ft (inside the 10 ft radius), interferer v at 12 ft from
   x (outside it). The signal grows and the interference shrinks as α
   rises, so the conflict must vanish monotonically: present at α = 1,
   gone from α = 2 on. *)
let test_alpha_regime () =
  let points = [| Point.v 0. 0.; Point.v 6. 0.; Point.v 18. 0. |] in
  let net = Network.create ~radius:10. points in
  let uninformed = Bitset.of_list 3 [ 1 ] in
  let conflict alpha =
    let inst =
      Interference.(bind (Sinr { default_sinr with alpha }) net)
    in
    Interference.conflicts inst ~uninformed 0 2
  in
  Alcotest.(check bool) "alpha=1: far interferer still drowns x" true (conflict 1.0);
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "alpha=%g: attenuation separates the pair" a)
        false (conflict a))
    [ 2.0; 3.0; 6.0 ]

(* ------------------ pair conflict ⟺ zone admission ----------------- *)

(* The pairwise prefilter is exactly two-element-class infeasibility:
   open a zone, accept u (singletons always feasible), and admission of
   v must be the negation of [conflicts u v]. *)
let qcheck_pair_zone =
  QCheck2.Test.make ~name:"sinr: pair conflict = two-element zone infeasibility"
    ~count:60 ~print:print_net_w gen_net_w (fun (net, w) ->
      let uninformed = Bitset.complement w in
      let inst = Interference.(bind (Sinr default_sinr) net) in
      let cls = Interference.classifier inst in
      List.for_all
        (fun (u, v) ->
          u = v
          ||
          (Interference.start_class cls ~uninformed;
           let singleton_ok = Interference.admits cls u in
           Interference.accept cls u;
           singleton_ok
           && Interference.admits cls v
              = not (Interference.conflicts inst ~uninformed u v)))
        (informed_pairs w))

(* -------------- validator accepts every planner/backend ------------ *)

let policies m =
  [
    ("26/17-approx", fun () -> Scheduler.run m Scheduler.Baseline ~source:0 ~start:1);
    ("E-model", fun () -> Scheduler.run m Scheduler.Emodel ~source:0 ~start:1);
    ("G-OPT", fun () -> Scheduler.run m Scheduler.gopt ~source:0 ~start:1);
    ("CDS", fun () -> Baseline_cds.plan m ~source:0 ~start:1);
    ("layered-26", fun () -> Baseline26.plan m ~source:0 ~start:1);
  ]

let qcheck_planners_validate =
  QCheck2.Test.make ~name:"every centralized planner validates under every backend"
    ~count:25 ~print:print_net_w gen_net_w (fun (net, _) ->
      List.for_all
        (fun phy ->
          let m = Model.create ~phy net Model.Sync in
          List.for_all
            (fun (name, plan) ->
              let s = plan () in
              let r = Validate.check m s in
              if not (r.Validate.ok && Schedule.covers_all s) then
                QCheck2.Test.fail_reportf "%s under %s: %s" name
                  (Interference.to_string phy)
                  (String.concat "; " r.Validate.violations)
              else true)
            (policies m))
        backends)

(* --------------------------- mc:1 ≡ udg ---------------------------- *)

let qcheck_mc1_is_udg =
  QCheck2.Test.make ~name:"mc:1 schedules byte-equal to udg" ~count:40 ~print:print_net_w gen_net_w
    (fun (net, _) ->
      List.for_all
        (fun policy ->
          let udg = Model.create net Model.Sync in
          let mc1 = Model.create ~phy:(Interference.Multichannel 1) net Model.Sync in
          Codec.schedule_bytes (Scheduler.run udg policy ~source:0 ~start:1)
          = Codec.schedule_bytes (Scheduler.run mc1 policy ~source:0 ~start:1))
        [ Scheduler.Baseline; Scheduler.Emodel; Scheduler.gopt ])

(* The explicit [~phy:Udg] spells the default: schedules byte-equal. *)
let test_udg_default () =
  let net = Test_support.small_network ~n:30 ~seed:11 in
  let a = Scheduler.run (Model.create net Model.Sync) Scheduler.gopt ~source:0 ~start:1 in
  let b =
    Scheduler.run
      (Model.create ~phy:Interference.Udg net Model.Sync)
      Scheduler.gopt ~source:0 ~start:1
  in
  schedule_eq "explicit udg = default" a b

(* --------------------- channel separation -------------------------- *)

(* Fig. 2: senders 1 and 2 share the uninformed receiver 3, a collision
   under one channel. Two channels separate them — node 3 tunes the
   lowest channel with an adjacent scheduled sender and decodes it. *)
let test_mc_channel_separation () =
  let net = Fixtures.fig2.Fixtures.net in
  let colliding =
    Schedule.make ~n_nodes:5 ~source:0 ~start:1
      [
        { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1; 2 ] };
        { Schedule.slot = 2; senders = [ 1; 2 ]; informed = [ 3; 4 ] };
      ]
  in
  let ok phy = (Validate.check (Model.create ~phy net Model.Sync) colliding).Validate.ok in
  Alcotest.(check bool) "collision under udg" false (ok Interference.Udg);
  Alcotest.(check bool) "overflow under mc:1" false (ok (Interference.Multichannel 1));
  Alcotest.(check bool) "separated under mc:2" true (ok (Interference.Multichannel 2))

(* ------------------------ spec id roundtrip ------------------------ *)

let test_spec_roundtrip () =
  List.iter
    (fun phy ->
      match Interference.parse (Interference.to_string phy) with
      | Ok p ->
          Alcotest.(check bool)
            (Interference.to_string phy ^ " roundtrips")
            true
            (Interference.equal p phy)
      | Error e -> Alcotest.failf "%s failed to parse: %s" (Interference.to_string phy) e)
    (backends
    @ Interference.
        [
          Sinr { alpha = 2.75; beta = 1.0e0 +. 1.0e-9; noise = 0.0; power = 3.125e-2 };
          Multichannel 255;
        ]);
  List.iter
    (fun bad ->
      match Interference.parse bad with
      | Ok _ -> Alcotest.failf "%S must not parse" bad
      | Error _ -> ())
    [ "udgg"; "mc:0"; "mc:256"; "mc:x"; "sinr:1"; "sinr:3,0.5,0.2,1"; "sinr:0,2,0.2,1" ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "phy"
    [
      ( "udg extraction",
        [ qt qcheck_udg_spec; qt qcheck_model_dispatch; qt qcheck_symmetry ] );
      ( "sinr",
        [
          qt qcheck_beta_monotone;
          Alcotest.test_case "alpha regime" `Quick test_alpha_regime;
          qt qcheck_pair_zone;
        ] );
      ( "schedules",
        [
          qt qcheck_planners_validate;
          qt qcheck_mc1_is_udg;
          Alcotest.test_case "udg default" `Quick test_udg_default;
          Alcotest.test_case "mc channel separation" `Quick test_mc_channel_separation;
        ] );
      ("spec", [ Alcotest.test_case "id roundtrip" `Quick test_spec_roundtrip ]);
    ]
