(* Pool: order preservation, exception routing, and the experiment
   engine's determinism guarantee — figure rows are byte-identical
   whether the sweep runs on one domain or several. *)

module Pool = Mlbs_util.Pool
module Config = Mlbs_workload.Config
module Figures = Mlbs_workload.Figures
module Report = Mlbs_workload.Report

let test_map_basic () =
  let input = Array.init 100 Fun.id in
  let expect = Array.map (fun x -> (x * x) + 1) input in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Pool.map ~jobs (fun x -> (x * x) + 1) input))
    [ 1; 2; 4; 7 ]

let test_map_order_under_skew () =
  (* Early indices get the heaviest work, so with >1 worker the later
     indices finish first — results must still land in input order. *)
  let input = Array.init 32 (fun i -> 32 - i) in
  let busy_square n =
    let acc = ref 0 in
    for _ = 1 to n * 10_000 do
      acc := (!acc + n) mod 1_000_003
    done;
    (n, !acc)
  in
  let serial = Pool.map ~jobs:1 busy_square input in
  let parallel = Pool.map ~jobs:4 busy_square input in
  Alcotest.(check bool) "order preserved" true (serial = parallel)

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 7 |] (Pool.map ~jobs:4 (fun x -> x + 1) [| 6 |])

exception Boom of int

let test_exception_routing () =
  (* The lowest-indexed failure is re-raised, and the pool still drains
     the whole batch first (no deadlock, no poisoned workers). *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "first failure wins (jobs=%d)" jobs)
        (Boom 3)
        (fun () ->
          ignore
            (Pool.map ~jobs
               (fun x -> if x >= 3 then raise (Boom x) else x)
               (Array.init 16 Fun.id))))
    [ 1; 4 ]

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let a = Pool.map_on pool string_of_int (Array.init 12 Fun.id) in
      let b = Pool.map_on pool String.length a in
      Alcotest.(check (array int)) "second batch"
        [| 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 2; 2 |] b)

let test_shutdown_rejects () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map_on: pool is shut down") (fun () ->
      ignore (Pool.map_on pool Fun.id (Array.init 4 Fun.id)))

(* A sweep small enough for CI: one node count, two seeds, tight search
   budgets. The rendered figure (table, chart, improvement lines) must
   match byte-for-byte across jobs settings. *)
let tiny_cfg =
  {
    Config.quick with
    Config.node_counts = [ 50 ];
    seeds = [ 1; 2 ];
    budget = { Mlbs_core.Mcounter.max_states = 200; lookahead = 1; beam = 2; mode = Classic };
    opt_max_sets = 8;
  }

let test_figure_rows_deterministic () =
  let render jobs = Report.render_figure (Figures.fig3 { tiny_cfg with Config.jobs = jobs }) in
  let one = render 1 in
  Alcotest.(check string) "jobs=4 identical to jobs=1" one (render 4);
  Alcotest.(check string) "jobs=2 identical to jobs=1" one (render 2)

let test_bounds_figure_deterministic () =
  (* fig5 exercises the analytical-bounds path (empty run results). *)
  let render jobs = Report.render_figure (Figures.fig5 { tiny_cfg with Config.jobs = jobs }) in
  Alcotest.(check string) "fig5 identical" (render 1) (render 4)

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "basic" `Quick test_map_basic;
          Alcotest.test_case "order under skew" `Quick test_map_order_under_skew;
          Alcotest.test_case "empty/singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "exception routing" `Quick test_exception_routing;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "shutdown" `Quick test_shutdown_rejects;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "figure rows" `Quick test_figure_rows_deterministic;
          Alcotest.test_case "bounds figure" `Quick test_bounds_figure_deterministic;
        ] );
    ]
