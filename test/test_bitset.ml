(* Bitset: unit tests against known sets plus qcheck properties against
   a sorted-int-list model. *)

module Bitset = Mlbs_util.Bitset

let capacity = 200

(* Model-based reference: operate on sorted deduplicated lists. *)
let gen_members =
  QCheck2.Gen.(list_size (int_bound 60) (int_bound (capacity - 1)))

let of_members xs = Bitset.of_list capacity xs

let sorted xs = List.sort_uniq compare xs

let test_empty () =
  let s = Bitset.create capacity in
  Alcotest.(check int) "cardinal" 0 (Bitset.cardinal s);
  Alcotest.(check bool) "is_empty" true (Bitset.is_empty s);
  Alcotest.(check bool) "not full" false (Bitset.is_full s);
  Alcotest.(check (list int)) "elements" [] (Bitset.elements s)

let test_add_remove () =
  let s = Bitset.create capacity in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  Alcotest.(check (list int)) "elements" [ 0; 63; 64; 199 ] (Bitset.elements s);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s)

let test_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add oob" (Invalid_argument "Bitset.add: index 10 out of [0,10)")
    (fun () -> Bitset.add s 10);
  Alcotest.(check bool) "mem oob false" false (Bitset.mem s 10);
  Alcotest.(check bool) "mem negative false" false (Bitset.mem s (-1))

let test_full_complement () =
  let s = Bitset.full 65 in
  Alcotest.(check bool) "full" true (Bitset.is_full s);
  let c = Bitset.complement s in
  Alcotest.(check bool) "complement empty" true (Bitset.is_empty c);
  let c2 = Bitset.complement c in
  Alcotest.(check bool) "complement roundtrip" true (Bitset.equal s c2)

let test_capacity_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 11 in
  Alcotest.check_raises "union mismatch"
    (Invalid_argument "Bitset.union_into: capacity mismatch (10 vs 11)") (fun () ->
      ignore (Bitset.union a b))

let test_choose () =
  Alcotest.(check (option int)) "empty" None (Bitset.choose (Bitset.create 5));
  Alcotest.(check (option int)) "smallest" (Some 2)
    (Bitset.choose (Bitset.of_list 5 [ 4; 2; 3 ]))

let test_zero_capacity () =
  let s = Bitset.create 0 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Alcotest.(check bool) "full (vacuous)" true (Bitset.is_full s);
  Alcotest.(check bool) "complement empty" true (Bitset.is_empty (Bitset.complement s))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let pair = QCheck2.Gen.pair gen_members gen_members

let props =
  [
    prop "elements = sorted model" gen_members (fun xs ->
        Bitset.elements (of_members xs) = sorted xs);
    prop "cardinal = |model|" gen_members (fun xs ->
        Bitset.cardinal (of_members xs) = List.length (sorted xs));
    prop "union matches model" pair (fun (a, b) ->
        Bitset.elements (Bitset.union (of_members a) (of_members b)) = sorted (a @ b));
    prop "inter matches model" pair (fun (a, b) ->
        let expect = List.filter (fun x -> List.mem x b) (sorted a) in
        Bitset.elements (Bitset.inter (of_members a) (of_members b)) = expect);
    prop "diff matches model" pair (fun (a, b) ->
        let expect = List.filter (fun x -> not (List.mem x b)) (sorted a) in
        Bitset.elements (Bitset.diff (of_members a) (of_members b)) = expect);
    prop "intersects = inter nonempty" pair (fun (a, b) ->
        Bitset.intersects (of_members a) (of_members b)
        = not (Bitset.is_empty (Bitset.inter (of_members a) (of_members b))));
    prop "subset = diff empty" pair (fun (a, b) ->
        Bitset.subset (of_members a) (of_members b)
        = Bitset.is_empty (Bitset.diff (of_members a) (of_members b)));
    prop "equal sets hash equally" gen_members (fun xs ->
        Bitset.hash (of_members xs) = Bitset.hash (of_members (List.rev xs)));
    prop "compare consistent with equal" pair (fun (a, b) ->
        Bitset.compare (of_members a) (of_members b) = 0
        = Bitset.equal (of_members a) (of_members b));
    prop "complement partitions" gen_members (fun xs ->
        let s = of_members xs in
        let c = Bitset.complement s in
        Bitset.is_empty (Bitset.inter s c)
        && Bitset.cardinal s + Bitset.cardinal c = capacity);
    prop "fold visits ascending" gen_members (fun xs ->
        let visited = List.rev (Bitset.fold (fun i acc -> i :: acc) (of_members xs) []) in
        visited = sorted xs);
    prop "union_into mutates in place" pair (fun (a, b) ->
        let into = of_members a in
        Bitset.union_into ~into (of_members b);
        Bitset.elements into = sorted (a @ b));
    (* In-place / fused kernels agree with their allocating originals. *)
    prop "inter_into = inter" pair (fun (a, b) ->
        let into = of_members a in
        Bitset.inter_into ~into (of_members b);
        Bitset.equal into (Bitset.inter (of_members a) (of_members b)));
    prop "complement_into = complement" gen_members (fun xs ->
        let s = of_members xs in
        let into = of_members [ 0; 63; 64 ] in
        Bitset.complement_into ~into s;
        Bitset.equal into (Bitset.complement s));
    prop "complement_into aliasing ok" gen_members (fun xs ->
        let s = of_members xs in
        let expect = Bitset.complement s in
        Bitset.complement_into ~into:s s;
        Bitset.equal s expect);
    prop "intersects3 = intersects of inter"
      (QCheck2.Gen.triple gen_members gen_members gen_members)
      (fun (a, b, c) ->
        Bitset.intersects3 (of_members a) (of_members b) (of_members c)
        = Bitset.intersects (Bitset.inter (of_members a) (of_members b)) (of_members c));
    prop "is_full = cardinal at capacity" gen_members (fun xs ->
        (* Exercise both the sparse case and the genuinely-full case. *)
        let s = of_members xs in
        let full = Bitset.full capacity in
        List.iter (Bitset.remove full) xs;
        Bitset.union_into ~into:full s;
        Bitset.is_full s = (Bitset.cardinal s = capacity)
        && Bitset.is_full full
        && (xs = [] || not (Bitset.is_full (Bitset.complement (of_members xs)))));
    prop "clear empties in place" gen_members (fun xs ->
        let s = of_members xs in
        Bitset.clear s;
        Bitset.is_empty s && Bitset.cap s = capacity);
  ]

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "full/complement" `Quick test_full_complement;
          Alcotest.test_case "capacity mismatch" `Quick test_capacity_mismatch;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
        ] );
      ("properties", props);
    ]
