(* Observability registry and tracing: sharded-merge determinism (the
   property the --jobs gates rely on), ring-buffer overflow keeping the
   newest events, and the disabled registry recording nothing. *)

module Obs = Mlbs_obs.Obs
module Metrics = Mlbs_obs.Metrics
module Trace = Mlbs_obs.Trace
module Export = Mlbs_obs.Export

(* Every test owns the global registry for its duration. *)
let with_obs ?(metrics = true) ?(tracing = false) f =
  Obs.enable ~metrics ~tracing ();
  Metrics.reset ();
  Trace.reset ();
  Fun.protect ~finally:Obs.disable f


(* --------------------- sharded merge determinism ------------------- *)

(* One op: (metric index, amount). Partitioning the op list over 1..4
   domains (each domain gets its own shard via DLS) must snapshot to
   the same totals as running everything on this domain — merge order
   and shard assignment cannot matter. *)
let qtest name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:50 ~name gen f)

let gen_ops =
  QCheck2.Gen.(
    pair (1 -- 4) (list_size (int_bound 60) (pair (int_bound 3) (int_bound 100))))

let cs = Array.init 4 (fun i -> Metrics.counter (Printf.sprintf "t/merge_c%d" i))
let hist = Metrics.histogram "t/merge_hist"

let apply_ops ops =
  List.iter
    (fun (i, v) ->
      Metrics.add cs.(i) v;
      Metrics.observe hist v)
    ops

let partition k xs =
  let buckets = Array.make k [] in
  List.iteri (fun i x -> buckets.(i mod k) <- x :: buckets.(i mod k)) xs;
  Array.to_list (Array.map List.rev buckets)

let prop_merge_matches_serial (k, ops) =
  let serial =
    with_obs (fun () ->
        apply_ops ops;
        Metrics.snapshot ())
  in
  let sharded =
    with_obs (fun () ->
        let parts = partition k ops in
        let domains = List.map (fun part -> Domain.spawn (fun () -> apply_ops part)) parts in
        List.iter Domain.join domains;
        Metrics.snapshot ())
  in
  (* Only this test's metrics: other suites' registrations share the
     registry but stay zero under reset. *)
  let mine = List.filter (fun (n, _) -> String.length n > 2 && String.sub n 0 2 = "t/") in
  mine serial = mine sharded

let test_merge_is_order_independent =
  qtest "sharded merge = serial totals" gen_ops prop_merge_matches_serial

let test_gauge_max () =
  with_obs (fun () ->
      let g = Metrics.gauge "t/gauge" in
      let ds =
        List.map (fun v -> Domain.spawn (fun () -> Metrics.set g v)) [ 3; 9; 5 ]
      in
      List.iter Domain.join ds;
      Metrics.set g 7;
      Alcotest.(check int) "max across shards" 9 (Metrics.counter_value "t/gauge"))

let test_histogram_buckets () =
  with_obs (fun () ->
      let h = Metrics.histogram "t/hist" in
      List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 1000 ];
      match List.assoc_opt "t/hist" (Metrics.snapshot ()) with
      | Some (Metrics.Dist { counts; total; sum }) ->
          Alcotest.(check int) "total" 6 total;
          Alcotest.(check int) "sum" 1010 sum;
          Alcotest.(check int) "bucket 0 (v<=0)" 1 counts.(0);
          Alcotest.(check int) "bucket 1 (v=1)" 1 counts.(1);
          Alcotest.(check int) "bucket 2 (2<=v<4)" 2 counts.(2);
          Alcotest.(check int) "bucket 3 (4<=v<8)" 1 counts.(3)
      | _ -> Alcotest.fail "histogram missing from snapshot")

let test_kind_clash () =
  Alcotest.check_raises "counter vs gauge"
    (Invalid_argument "Metrics: \"t/merge_c0\" already registered with another kind")
    (fun () -> ignore (Metrics.gauge "t/merge_c0"))

(* ------------------------- ring overflow --------------------------- *)

let test_ring_keeps_newest () =
  let saved = Trace.capacity () in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_capacity saved;
      Trace.reset ())
    (fun () ->
      Trace.set_capacity 8;
      Obs.enable ~metrics:false ~tracing:true ();
      Trace.reset ();
      Fun.protect ~finally:Obs.disable (fun () ->
          for i = 1 to 20 do
            Trace.instant ~arg:i ~cat:"t" "tick"
          done;
          let evs = Trace.events () in
          Alcotest.(check int) "capacity bounds the ring" 8 (List.length evs);
          Alcotest.(check (list int))
            "newest survive, oldest overwritten"
            [ 13; 14; 15; 16; 17; 18; 19; 20 ]
            (List.map (fun e -> e.Trace.arg) evs)))

(* ------------------------ disabled registry ------------------------ *)

let test_disabled_records_nothing () =
  Obs.disable ();
  Metrics.reset ();
  Trace.reset ();
  let c = Metrics.counter "t/disabled" in
  Metrics.incr c;
  Metrics.add c 41;
  Metrics.observe hist 5;
  Trace.instant ~cat:"t" "never";
  let r = Trace.with_span ~cat:"t" "span" (fun () -> 17) in
  Alcotest.(check int) "span is transparent" 17 r;
  Alcotest.(check int) "counter stayed zero" 0 (Metrics.counter_value "t/disabled");
  Alcotest.(check int) "histogram stayed empty" 0 (Metrics.counter_value "t/merge_hist");
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()))

(* --------------------------- exporters ----------------------------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_metrics_object_canonical () =
  with_obs (fun () ->
      Metrics.add cs.(0) 3;
      Metrics.observe hist 2;
      let once = Export.metrics_object (Metrics.snapshot ()) in
      let again = Export.metrics_object (Metrics.snapshot ()) in
      Alcotest.(check string) "rendering is stable" once again;
      Alcotest.(check bool) "schema tagged" true
        (contains ~sub:"\"schema\": \"mlbs-metrics-1\"" once))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          test_merge_is_order_independent;
          Alcotest.test_case "gauge merges by max" `Quick test_gauge_max;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "kind clash rejected" `Quick test_kind_clash;
        ] );
      ( "tracing",
        [ Alcotest.test_case "ring keeps newest" `Quick test_ring_keeps_newest ] );
      ( "disabled",
        [ Alcotest.test_case "records nothing" `Quick test_disabled_records_nothing ] );
      ( "export",
        [ Alcotest.test_case "canonical object" `Quick test_metrics_object_canonical ] );
    ]
