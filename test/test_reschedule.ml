(* Delta repair must be invisible in the output: a repaired schedule is
   byte-for-byte the schedule a from-scratch [Scheduler.run] produces on
   the edited model — under chained drift, arbitrary edge add/remove
   deltas, warm or cold, sync or duty-cycled. The suite walks random
   churn chains comparing canonical schedule bytes at every step, and
   checks the watermarked undo-log properties ([Istate.frames_clear_of]
   / [rewind_region]) the certified-prefix computation rests on. *)

module Bitset = Mlbs_util.Bitset
module Rng = Mlbs_prng.Rng
module Graph = Mlbs_graph.Graph
module Network = Mlbs_wsn.Network
module Churn = Mlbs_wsn.Churn
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Model = Mlbs_core.Model
module Choices = Mlbs_core.Choices
module Istate = Mlbs_core.Istate
module Schedule = Mlbs_core.Schedule
module Scheduler = Mlbs_core.Scheduler
module Reschedule = Mlbs_core.Reschedule
module Codec = Mlbs_server.Codec

let bytes_of = Codec.schedule_bytes

(* Drift displacements of radius/5, as in the churn bench and CLI. *)
let jitter = 2.0

let policies = [ Scheduler.Baseline; Scheduler.Emodel; Scheduler.gopt ]

let gen_instance =
  QCheck2.Gen.(
    let* n = int_range 8 13 in
    let* seed = int_bound 100000 in
    let* policy = oneofl policies in
    let* duty = bool in
    let* rate = int_range 2 6 in
    let net = Test_support.small_network ~n ~seed in
    let system =
      if duty then Model.Async (Wake_schedule.create ~rate ~n_nodes:n ~seed ())
      else Model.Sync
    in
    return (net, system, policy))

let gen_walk = QCheck2.Gen.(pair gen_instance (list_size (int_range 1 4) small_int))

(* ----------------------- chained drift walks ----------------------- *)

(* Follow a churn chain the way the daemon does: each repair consumes
   the previous step's model, schedule and memo snapshot (the snapshot's
   graph is the model's — the [?snapshot_graph] default). Every repaired
   schedule must equal the cold solve of its own model. [Churn.drift]
   gives up on deployments it cannot keep connected; those walks prove
   nothing and pass vacuously. *)
let walk_byte_equal ((net, system, policy), moves) =
  let model0 = Model.create net system in
  let source = 0 in
  try
    let sched0, snap0 = Scheduler.run_warm model0 policy ~source ~start:1 () in
    let rng = Rng.create 0xC4A1 in
    let rec step net model sched snap = function
      | [] -> true
      | k :: rest ->
          let d = Churn.drift rng net ~k:(1 + (abs k mod 3)) ~jitter in
          let rep =
            Reschedule.reschedule model policy ?snapshot:snap ~source
              ~old_schedule:sched ~added:[] ~removed:[] ~rewired:d.Churn.rewired ()
          in
          let fresh = Scheduler.run rep.Reschedule.model policy ~source ~start:1 in
          bytes_of rep.Reschedule.schedule = bytes_of fresh
          && step d.Churn.network rep.Reschedule.model rep.Reschedule.schedule
               rep.Reschedule.snapshot rest
    in
    step net model0 sched0 snap0 moves
  with Failure _ -> true

(* A stale snapshot — the base solve's, several drifts old, named via
   [?snapshot_graph] — may only shrink the seed set, never change the
   schedule. This is the daemon's family-index situation when churn has
   moved on but the index still holds an earlier family member. *)
let stale_snapshot_byte_equal ((net, system, policy), moves) =
  let model0 = Model.create net system in
  let source = 0 in
  let g0 = Model.graph model0 in
  try
    let sched0, snap0 = Scheduler.run_warm model0 policy ~source ~start:1 () in
    let rng = Rng.create 0xBEEF in
    let rec step net model sched = function
      | [] -> true
      | k :: rest ->
          let d = Churn.drift rng net ~k:(1 + (abs k mod 3)) ~jitter in
          let rep =
            Reschedule.reschedule model policy ?snapshot:snap0 ~snapshot_graph:g0
              ~source ~old_schedule:sched ~added:[] ~removed:[]
              ~rewired:d.Churn.rewired ()
          in
          let fresh = Scheduler.run rep.Reschedule.model policy ~source ~start:1 in
          bytes_of rep.Reschedule.schedule = bytes_of fresh
          && step d.Churn.network rep.Reschedule.model rep.Reschedule.schedule rest
    in
    step net model0 sched0 moves
  with Failure _ -> true

(* ----------------------- add/remove deltas ------------------------- *)

(* Edge add/remove deltas (node pairs drawn blind, partitioned against
   the current adjacency) exercise the [~added]/[~removed] arms the
   drift walks never touch. Deltas that disconnect the source raise
   [Failure] — the documented contract, accepted here. *)
let add_remove_byte_equal ((net, system, policy), pairs) =
  let model = Model.create net system in
  let n = Model.n_nodes model in
  let g = Model.graph model in
  let source = 0 in
  let norm (a, b) = (min (abs a mod n) (abs b mod n), max (abs a mod n) (abs b mod n)) in
  let pairs =
    List.sort_uniq compare (List.filter (fun (u, v) -> u <> v) (List.map norm pairs))
  in
  let added, removed = List.partition (fun (u, v) -> not (Graph.mem_edge g u v)) pairs in
  try
    let sched, snap = Scheduler.run_warm model policy ~source ~start:1 () in
    let rep =
      Reschedule.reschedule model policy ?snapshot:snap ~source ~old_schedule:sched
        ~added ~removed ~rewired:[] ()
    in
    let fresh = Scheduler.run rep.Reschedule.model policy ~source ~start:1 in
    bytes_of rep.Reschedule.schedule = bytes_of fresh
  with Failure _ -> true

(* ------------------------ report invariants ------------------------ *)

(* The certified-intact prefix really is intact: each of the first
   [clear_steps] old-schedule steps replays verbatim on the edited
   model (same senders, same newly-informed sets), touching no changed
   endpoint. The changed list must match [Graph.diff_endpoints] and sit
   inside the reported region. *)
let report_invariants ((net, system, policy), pairs) =
  let model = Model.create net system in
  let n = Model.n_nodes model in
  let g = Model.graph model in
  let source = 0 in
  let norm (a, b) = (min (abs a mod n) (abs b mod n), max (abs a mod n) (abs b mod n)) in
  let pairs =
    List.sort_uniq compare (List.filter (fun (u, v) -> u <> v) (List.map norm pairs))
  in
  let added, removed = List.partition (fun (u, v) -> not (Graph.mem_edge g u v)) pairs in
  try
    let sched = Scheduler.run model policy ~source ~start:1 in
    let rep =
      Reschedule.reschedule model policy ~source ~old_schedule:sched ~added ~removed
        ~rewired:[] ()
    in
    let g' = Model.graph rep.Reschedule.model in
    let changed_ok = rep.Reschedule.changed = Graph.diff_endpoints g g' in
    let region_ok =
      List.for_all (fun u -> Bitset.mem rep.Reschedule.region u) rep.Reschedule.changed
    in
    let endpoints = Bitset.of_list n rep.Reschedule.changed in
    let model' = rep.Reschedule.model in
    let rec replay w i = function
      | _ when i >= rep.Reschedule.clear_steps -> true
      | [] -> true
      | { Schedule.senders; informed; _ } :: rest ->
          List.for_all (fun u -> not (Bitset.mem endpoints u)) senders
          && List.for_all (fun v -> not (Bitset.mem endpoints v)) informed
          && List.sort compare (Model.newly_informed model' ~w ~senders)
             = List.sort compare informed
          && replay (Model.apply model' ~w ~senders) (i + 1) rest
    in
    let steps = Schedule.steps sched in
    changed_ok && region_ok
    && rep.Reschedule.clear_steps <= List.length steps
    && replay (Model.initial_w model' ~source) 0 steps
  with Failure _ -> true

(* ------------------- watermarked undo-log rewind ------------------- *)

(* [frames_clear_of] must equal the naive count of leading frames whose
   newly-informed nodes avoid the region, and [rewind_region] must pop
   to exactly that depth — on a random apply walk, against a region
   drawn independently of it. *)
let watermark_rewind ((model, _seed), rs, members) =
  let n = Model.n_nodes model in
  let st = Istate.create n in
  let w0 = Model.initial_w model ~source:0 in
  Istate.reset st model ~w:w0;
  let frames = ref [] (* newly-informed deltas, newest first *)
  and w = ref w0
  and slot = ref 1 in
  List.iter
    (fun r ->
      if not (Model.complete model ~w:!w) then
        match Choices.enumerate model Choices.Greedy ~w:!w ~slot:!slot with
        | [] -> incr slot
        | cs ->
            let senders = List.nth cs (abs r mod List.length cs) in
            Istate.apply st ~senders;
            frames := Istate.last_added st :: !frames;
            w := Model.apply model ~w:!w ~senders;
            incr slot)
    rs;
  let region = Bitset.create n in
  List.iter (fun i -> Bitset.add region (abs i mod n)) members;
  let naive =
    let rec count k = function
      | added :: rest when List.for_all (fun v -> not (Bitset.mem region v)) added ->
          count (k + 1) rest
      | _ -> k
    in
    count 0 (List.rev !frames)
  in
  let cleared = Istate.frames_clear_of st ~region in
  let depth = Istate.rewind_region st ~region in
  cleared = naive && depth = naive && Istate.depth st = naive

let prop ?(count = 30) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_pairs =
  QCheck2.Gen.(pair gen_instance (list_size (int_range 1 6) (pair small_int small_int)))

let () =
  Alcotest.run "reschedule"
    [
      ( "byte equality",
        [
          prop "chained drift repair = from-scratch solve" gen_walk walk_byte_equal;
          prop ~count:20 "stale base snapshot still byte-identical" gen_walk
            stale_snapshot_byte_equal;
          prop "add/remove delta repair = from-scratch solve" gen_pairs
            add_remove_byte_equal;
        ] );
      ( "report",
        [ prop ~count:20 "certified prefix replays verbatim" gen_pairs report_invariants ] );
      ( "undo log",
        [
          prop ~count:60 "frames_clear_of / rewind_region match naive count"
            QCheck2.Gen.(
              triple Test_support.gen_sync_model
                (list_size (int_bound 20) (int_bound 1000))
                (list_size (int_bound 6) small_int))
            watermark_rewind;
        ] );
    ]
