module Bitset = Mlbs_util.Bitset
module Model = Mlbs_core.Model
module Choices = Mlbs_core.Choices
module Mcounter = Mlbs_core.Mcounter
module Schedule = Mlbs_core.Schedule
module Fixtures = Mlbs_workload.Fixtures
module Validate = Mlbs_sim.Validate

let big_budget = { Mcounter.max_states = 1_000_000; lookahead = 2; beam = 4; mode = Classic }

let eval model space ~w ~slot = Mcounter.evaluate model space ~budget:big_budget ~w ~slot

(* ----------------------- fixture values --------------------------- *)

let test_fig2_sync () =
  (* Table II: P(A) = 2 with the greedy scheme, and also for OPT. *)
  let m = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  let w = Model.initial_w m ~source:0 in
  let g = eval m Choices.Greedy ~w ~slot:1 in
  Alcotest.(check int) "greedy finish" 2 g.Mcounter.finish;
  Alcotest.(check bool) "exact" true g.Mcounter.exact;
  let o = eval m (Choices.All { max_sets = 64 }) ~w ~slot:1 in
  Alcotest.(check int) "opt finish" 2 o.Mcounter.finish

let test_fig1_sync () =
  (* Table III: P(A) = 3 for both G-OPT and OPT. *)
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let w = Model.initial_w m ~source in
  Alcotest.(check int) "greedy finish" 3 (eval m Choices.Greedy ~w ~slot:start).Mcounter.finish;
  Alcotest.(check int) "opt finish" 3
    (eval m (Choices.All { max_sets = 64 }) ~w ~slot:start).Mcounter.finish

let test_fig2_async () =
  (* Table IV: P(A) = 4 starting at t_s = 2. *)
  let fixture, sched = Fixtures.fig2_dc in
  let m = Model.create fixture.Fixtures.net (Model.Async sched) in
  let w = Model.initial_w m ~source:fixture.Fixtures.source in
  let e = eval m Choices.Greedy ~w ~slot:fixture.Fixtures.start in
  Alcotest.(check int) "finish" 4 e.Mcounter.finish;
  Alcotest.(check bool) "exact" true e.Mcounter.exact

let test_fig1_wrong_first_choice () =
  (* Figure 1(b): committing to node 0's relay first costs one extra
     round — M({s,0-3,5-7}, 3) = 4 while the optimum is 3. *)
  let { Fixtures.net; source; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let w = Model.initial_w m ~source in
  let w1 = Model.apply m ~w ~senders:[ source ] in
  let after_zero = Model.apply m ~w:w1 ~senders:[ 0 ] in
  Alcotest.(check int) "deferred" 4
    (eval m (Choices.All { max_sets = 64 }) ~w:after_zero ~slot:3).Mcounter.finish;
  let after_one = Model.apply m ~w:w1 ~senders:[ 1 ] in
  Alcotest.(check int) "optimal branch" 3
    (eval m (Choices.All { max_sets = 64 }) ~w:after_one ~slot:3).Mcounter.finish

let test_complete_is_slot_minus_one () =
  let m = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  let w = Bitset.full 5 in
  Alcotest.(check int) "M(N,t) = t-1" 6 (eval m Choices.Greedy ~w ~slot:7).Mcounter.finish

let test_unreachable_rejected () =
  (* Two isolated pairs: broadcasting from 0 can never reach 2-3. *)
  let points =
    [|
      Mlbs_geom.Point.v 0. 0.; Mlbs_geom.Point.v 1. 0.;
      Mlbs_geom.Point.v 40. 0.; Mlbs_geom.Point.v 41. 0.;
    |]
  in
  let net = Mlbs_wsn.Network.create ~radius:5. points in
  let m = Model.create net Model.Sync in
  let w = Model.initial_w m ~source:0 in
  Alcotest.check_raises "unreachable"
    (Failure "Mcounter: some node is unreachable from the informed set") (fun () ->
      ignore (eval m Choices.Greedy ~w ~slot:1))

(* --------------------------- plans -------------------------------- *)

let test_plan_matches_evaluation_fig1 () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let plan = Mcounter.plan m Choices.Greedy ~budget:big_budget ~source ~start in
  Alcotest.(check int) "finish matches" 3 (Schedule.finish plan);
  Alcotest.(check bool) "covers all" true (Schedule.covers_all plan);
  Validate.check_exn m plan

let test_plan_async_fig2 () =
  let fixture, sched = Fixtures.fig2_dc in
  let m = Model.create fixture.Fixtures.net (Model.Async sched) in
  let plan =
    Mcounter.plan m Choices.Greedy ~budget:big_budget ~source:fixture.Fixtures.source
      ~start:fixture.Fixtures.start
  in
  Alcotest.(check int) "finish" 4 (Schedule.finish plan);
  Validate.check_exn m plan;
  (* The first transmission is the source's wake at slot 2; the second
     advance happens at slot 4. *)
  let slots = List.map (fun s -> s.Schedule.slot) (Schedule.steps plan) in
  Alcotest.(check (list int)) "slots" [ 2; 4 ] slots

let test_budget_fallback_still_valid () =
  let tiny = { Mcounter.max_states = 1; lookahead = 1; beam = 2; mode = Classic } in
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let e = Mcounter.evaluate m Choices.Greedy ~budget:tiny ~w:(Model.initial_w m ~source) ~slot:start in
  Alcotest.(check bool) "flagged inexact" false e.Mcounter.exact;
  Alcotest.(check bool) "still an upper bound >= optimum" true (e.Mcounter.finish >= 3);
  let plan = Mcounter.plan m Choices.Greedy ~budget:tiny ~source ~start in
  Validate.check_exn m plan

(* ------------------------ properties ------------------------------ *)

let prop ?(count = 60) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_sync = Test_support.gen_sync_model
let gen_async = Test_support.gen_async_model

let initial model = Model.initial_w model ~source:0

let props =
  [
    prop "exact OPT <= exact G-OPT (choice-space dominance)" gen_sync
      (fun (model, _) ->
        let w = initial model in
        let o = eval model (Choices.All { max_sets = 4096 }) ~w ~slot:1 in
        let g = eval model Choices.Greedy ~w ~slot:1 in
        (not (o.Mcounter.exact && g.Mcounter.exact))
        || o.Mcounter.finish <= g.Mcounter.finish);
    prop "hop lower bound is admissible" gen_sync (fun (model, _) ->
        let w = initial model in
        let lb = Mcounter.hop_lower_bound model ~w in
        let g = eval model Choices.Greedy ~w ~slot:1 in
        g.Mcounter.finish >= lb);
    prop "rollout is an upper bound on exact M" gen_sync (fun (model, _) ->
        let w = initial model in
        let g = eval model Choices.Greedy ~w ~slot:1 in
        let r = Mcounter.rollout_finish model Choices.Greedy ~w ~slot:1 in
        (not g.Mcounter.exact) || r >= g.Mcounter.finish);
    prop "monotone: informing one more node never hurts" gen_sync (fun (model, seed) ->
        let w = initial model in
        let n = Model.n_nodes model in
        let extra = seed mod n in
        let w' = Bitset.copy w in
        Bitset.add w' extra;
        let m1 = eval model Choices.Greedy ~w ~slot:1 in
        let m2 = eval model Choices.Greedy ~w:w' ~slot:1 in
        (not (m1.Mcounter.exact && m2.Mcounter.exact))
        || m2.Mcounter.finish <= m1.Mcounter.finish);
    prop "sync time-shift invariance: M(w,t+k) = M(w,t)+k" gen_sync (fun (model, _) ->
        let w = initial model in
        let a = eval model Choices.Greedy ~w ~slot:1 in
        let b = eval model Choices.Greedy ~w ~slot:5 in
        b.Mcounter.finish = a.Mcounter.finish + 4);
    prop "plan realises the evaluated finish (sync exact)" gen_sync (fun (model, _) ->
        let w = initial model in
        let e = eval model Choices.Greedy ~w ~slot:1 in
        let plan = Mcounter.plan model Choices.Greedy ~budget:big_budget ~source:0 ~start:1 in
        (not e.Mcounter.exact) || Schedule.finish plan = e.Mcounter.finish);
    prop "plans replay cleanly on the radio (sync)" gen_sync (fun (model, _) ->
        let plan = Mcounter.plan model Choices.Greedy ~budget:big_budget ~source:0 ~start:1 in
        (Validate.check model plan).Validate.ok);
    prop ~count:40 "plans replay cleanly on the radio (async)" gen_async
      (fun (model, _) ->
        let plan = Mcounter.plan model Choices.Greedy ~budget:big_budget ~source:0 ~start:1 in
        (Validate.check model plan).Validate.ok);
    prop ~count:40 "async plan matches async evaluation when exact" gen_async
      (fun (model, _) ->
        let e = eval model Choices.Greedy ~w:(initial model) ~slot:1 in
        let plan = Mcounter.plan model Choices.Greedy ~budget:big_budget ~source:0 ~start:1 in
        (not e.Mcounter.exact) || Schedule.finish plan = e.Mcounter.finish);
    prop ~count:40 "idling at an active slot never helps (async)" gen_async
      (fun (model, _) ->
        (* The search never considers "do nothing" at an active slot;
           monotonicity makes acting dominate. Skipping the first active
           slot must not improve the finish time. *)
        let w = initial model in
        match Model.next_active_slot model ~w ~after:0 with
        | None -> true
        | Some t ->
            let act = eval model Choices.Greedy ~w ~slot:t in
            let skip = eval model Choices.Greedy ~w ~slot:(t + 1) in
            (not (act.Mcounter.exact && skip.Mcounter.exact))
            || act.Mcounter.finish <= skip.Mcounter.finish);
    prop ~count:40 "async finish >= sync finish (waits only add)" gen_async
      (fun (model, _) ->
        let sync_model = Model.create (Model.network model) Model.Sync in
        let a = eval model Choices.Greedy ~w:(initial model) ~slot:1 in
        let s = eval sync_model Choices.Greedy ~w:(initial sync_model) ~slot:1 in
        (not (a.Mcounter.exact && s.Mcounter.exact))
        || a.Mcounter.finish >= s.Mcounter.finish);
  ]

let () =
  Alcotest.run "mcounter"
    [
      ( "fixtures",
        [
          Alcotest.test_case "fig2 sync = 2" `Quick test_fig2_sync;
          Alcotest.test_case "fig1 sync = 3" `Quick test_fig1_sync;
          Alcotest.test_case "fig2 async = 4" `Quick test_fig2_async;
          Alcotest.test_case "fig1 wrong first choice" `Quick test_fig1_wrong_first_choice;
          Alcotest.test_case "complete state" `Quick test_complete_is_slot_minus_one;
          Alcotest.test_case "unreachable" `Quick test_unreachable_rejected;
        ] );
      ( "plans",
        [
          Alcotest.test_case "fig1 plan" `Quick test_plan_matches_evaluation_fig1;
          Alcotest.test_case "fig2 async plan" `Quick test_plan_async_fig2;
          Alcotest.test_case "budget fallback" `Quick test_budget_fallback_still_valid;
        ] );
      ("properties", props);
    ]
