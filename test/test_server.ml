module Codec = Mlbs_server.Codec
module Cache = Mlbs_server.Cache
module Daemon = Mlbs_server.Daemon
module Client = Mlbs_server.Client
module Schedule = Mlbs_core.Schedule
module Pool = Mlbs_util.Pool

let temp_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mlbs_server_%d_%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let sample_schedule =
  Schedule.make ~n_nodes:6 ~source:0 ~start:1
    [
      { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1; 4 ] };
      { Schedule.slot = 3; senders = [ 1; 4 ]; informed = [ 2; 3; 5 ] };
    ]

let sample_stats =
  { Codec.elapsed = 3; transmissions = 3; n_steps = 2; search_states = 17; solve_us = 1234 }

let gen_request =
  {
    Codec.policy = Codec.Gopt;
    rate = None;
    seed = 7;
    topology = Codec.Gen { n = 60; radius = 10.0 };
    source = None;
    start = 1;
    model = Mlbs_phy.Interference.Udg;
  }

(* ------------------------------ codec ------------------------------ *)

let roundtrip msg = Codec.decode (Codec.encode msg)

let check_roundtrip name msg =
  Alcotest.(check bool) name true (roundtrip msg = msg)

let sample_delta =
  {
    Codec.d_added = [ (0, 3); (2, 5) ];
    d_removed = [ (1, 4) ];
    d_rewired = [ (0, [ 1; 3 ]); (5, [ 2; 4 ]) ];
  }

let test_codec_roundtrip () =
  Alcotest.(check int) "versioned replies need protocol v5" 5 Codec.protocol_version;
  check_roundtrip "hello" (Codec.Hello { proto = 1; version = "1.1.0" });
  check_roundtrip "hello_ack"
    (Codec.Hello_ack { proto = 1; version = "1.1.0"; version_match = false });
  check_roundtrip "request gen" (Codec.Request gen_request);
  check_roundtrip "request adj"
    (Codec.Request
       {
         gen_request with
         Codec.topology = Codec.Adj [| [ 1 ]; [ 0; 2 ]; [ 1 ] |];
         rate = Some 5;
         source = Some 2;
       });
  check_roundtrip "request sinr"
    (Codec.Request
       { gen_request with Codec.model = Mlbs_phy.Interference.(Sinr default_sinr) });
  check_roundtrip "request sinr custom"
    (Codec.Request
       {
         gen_request with
         Codec.model =
           Mlbs_phy.Interference.Sinr
             { alpha = 2.5; beta = 1.5; noise = 0.1; power = 0.75 };
       });
  check_roundtrip "request mc"
    (Codec.Request { gen_request with Codec.model = Mlbs_phy.Interference.Multichannel 3 });
  check_roundtrip "reply_ok"
    (Codec.Reply_ok
       {
         trace_id = "rq-000001-aabbccdd";
         cache_hit = true;
         version = 3;
         stats = sample_stats;
         schedule = sample_schedule;
       });
  check_roundtrip "reschedule"
    (Codec.Reschedule { base = gen_request; delta = sample_delta });
  check_roundtrip "reschedule empty delta"
    (Codec.Reschedule
       { base = gen_request; delta = { Codec.d_added = []; d_removed = []; d_rewired = [] } });
  check_roundtrip "rejected" (Codec.Reply_rejected { retry_after_ms = 120 });
  check_roundtrip "error" (Codec.Reply_error "boom");
  check_roundtrip "stats_request" Codec.Stats_request;
  check_roundtrip "stats_reply"
    (Codec.Stats_reply [ ("server/requests", 42); ("server/cache/hits", 7) ]);
  check_roundtrip "shutdown" Codec.Shutdown;
  check_roundtrip "shutdown_ack" Codec.Shutdown_ack;
  check_roundtrip "peek" (Codec.Peek gen_request);
  check_roundtrip "peek_miss" Codec.Peek_miss;
  check_roundtrip "put"
    (Codec.Put
       { req = gen_request; version = 2; stats = sample_stats; schedule = sample_schedule });
  check_roundtrip "put_ack" Codec.Put_ack

let expect_malformed name payload =
  match Codec.decode payload with
  | _ -> Alcotest.failf "%s: expected Malformed" name
  | exception Codec.Malformed _ -> ()

let test_codec_malformed () =
  expect_malformed "empty" "";
  expect_malformed "unknown tag" "\xff";
  expect_malformed "truncated hello" "\x01\x00\x00";
  (* A count field claiming more elements than the payload holds must be
     rejected before anything that size is allocated. *)
  expect_malformed "hostile count" "\x06\x7f\xff\xff\xff";
  let ok = Codec.encode (Codec.Reply_error "x") in
  expect_malformed "trailing bytes" (ok ^ "y");
  (* An inconsistent schedule (steps out of order) must not decode. *)
  let b = Buffer.create 64 in
  Buffer.add_string b "\x04";
  Buffer.add_string b "\x00\x00\x00\x02id";
  Buffer.add_string b "\x00";
  Buffer.add_string b (String.concat "" (List.map (fun _ -> "\x00\x00\x00\x01") [ 1; 2; 3 ]));
  Buffer.add_string b "\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x01";
  Buffer.add_string b "\x00\x00\x00\x06\x00\x00\x00\x00\x00\x00\x00\x01";
  Buffer.add_string b "\x00\x00\x00\x02";
  (* two steps, both at slot 1 *)
  let step =
    "\x00\x00\x00\x01" ^ "\x00\x00\x00\x01\x00\x00\x00\x00" ^ "\x00\x00\x00\x01\x00\x00\x00\x01"
  in
  Buffer.add_string b step;
  Buffer.add_string b step;
  expect_malformed "non-increasing slots" (Buffer.contents b)

let test_codec_framing () =
  let r, w = Unix.pipe () in
  let msgs =
    [ Codec.Hello { proto = 1; version = "x" }; Codec.Request gen_request; Codec.Shutdown ]
  in
  List.iter (Codec.send w) msgs;
  Unix.close w;
  let got = List.map (fun _ -> Option.get (Codec.recv r)) msgs in
  Alcotest.(check bool) "all frames round-trip" true (got = msgs);
  Alcotest.(check bool) "clean EOF" true (Codec.recv r = None);
  Unix.close r

(* ------------------------------ cache ------------------------------ *)

let test_cache_lru_eviction () =
  let c = Cache.create ~metrics_prefix:"test/lru" ~capacity:3 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  (* Touch "a": it becomes MRU, so "b" is now the eviction victim. *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Cache.find c "a");
  Cache.add c "d" 4;
  Alcotest.(check int) "still at capacity" 3 (Cache.length c);
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a survived" (Some 1) (Cache.find c "a");
  Alcotest.(check (list string)) "mru order"
    [ "a"; "d"; "c" ]
    (List.map fst (Cache.to_list_mru c));
  (* Replacing a key must not grow the cache. *)
  Cache.add c "d" 40;
  Alcotest.(check int) "replace keeps length" 3 (Cache.length c);
  Alcotest.(check (option int)) "replace updates" (Some 40) (Cache.find c "d")

let test_cache_zero_capacity () =
  let c = Cache.create ~metrics_prefix:"test/zero" ~capacity:0 () in
  Cache.add c "a" 1;
  Alcotest.(check int) "stores nothing" 0 (Cache.length c);
  Alcotest.(check (option int)) "always misses" None (Cache.find c "a")

let test_cache_concurrent_domains () =
  (* Hammer one cache from real domains: every hit must return the
     value written for that key — never a torn or foreign entry. *)
  let c = Cache.create ~metrics_prefix:"test/conc" ~capacity:64 () in
  let ops = Array.init 400 (fun i -> i) in
  let ok =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map_on pool
          (fun i ->
            let key = Printf.sprintf "k%d" (i mod 50) in
            Cache.add c key (String.make 5 (Char.chr (65 + (i mod 26))));
            match Cache.find c key with
            | None -> true (* may have been evicted by a neighbour *)
            | Some v ->
                String.length v = 5 && Array.for_all (fun ch -> ch = v.[0])
                  (Array.init 5 (fun j -> v.[j])))
          ops)
  in
  Alcotest.(check bool) "no torn entries" true (Array.for_all Fun.id ok);
  Alcotest.(check bool) "capacity respected" true (Cache.length c <= 64)

(* ------------------------- cache persistence ----------------------- *)

let entry_of_request req = Daemon.entry_of ~origin:req (Daemon.solve req)

let test_cache_persistence_roundtrip () =
  let dir = temp_dir () in
  let c = Cache.create ~metrics_prefix:"test/persist" ~capacity:8 () in
  let reqs =
    List.map
      (fun seed ->
        { gen_request with Codec.seed; topology = Codec.Gen { n = 50; radius = 10.0 } })
      [ 1; 2; 3 ]
  in
  List.iter (fun req -> Cache.add c (Daemon.cache_key req) (entry_of_request req)) reqs;
  let saved = Daemon.save_cache ~dir ~limit:8 c in
  Alcotest.(check int) "saved all" 3 saved;
  let c' = Cache.create ~metrics_prefix:"test/persist2" ~capacity:8 () in
  let loaded = Daemon.load_cache ~dir c' in
  Alcotest.(check int) "loaded all" 3 loaded;
  Alcotest.(check (list string)) "recency order restored"
    (List.map fst (Cache.to_list_mru c))
    (List.map fst (Cache.to_list_mru c'));
  List.iter2
    (fun (k, (e : Daemon.entry)) (k', (e' : Daemon.entry)) ->
      Alcotest.(check string) "key" k k';
      Alcotest.(check string) "schedule bytes"
        (Codec.schedule_bytes e.Daemon.schedule)
        (Codec.schedule_bytes e'.Daemon.schedule);
      Alcotest.(check int) "elapsed" e.Daemon.stats.Codec.elapsed e'.Daemon.stats.Codec.elapsed)
    (Cache.to_list_mru c) (Cache.to_list_mru c');
  (* Persisting on top of an existing directory truncates the index. *)
  let saved2 = Daemon.save_cache ~dir ~limit:2 c in
  Alcotest.(check int) "limit respected" 2 saved2;
  let c'' = Cache.create ~metrics_prefix:"test/persist3" ~capacity:8 () in
  Alcotest.(check int) "reload sees the truncation" 2 (Daemon.load_cache ~dir c'');
  rm_rf dir

let test_load_cache_missing_dir () =
  Alcotest.(check int) "no index -> 0"
    0
    (Daemon.load_cache ~dir:"/nonexistent/mlbs-cache"
       (Cache.create ~metrics_prefix:"test/missing" ~capacity:4 ()))

(* ---------------------------- cache keys --------------------------- *)

let test_cache_key_content_addressing () =
  (* The same labelled adjacency, neighbour lists built in different
     orders, must file under the same key. *)
  let adj_a = [| [ 1; 2 ]; [ 0; 2 ]; [ 0; 1; 3 ]; [ 2 ] |] in
  let adj_b = [| [ 2; 1 ]; [ 2; 0 ]; [ 3; 1; 0 ]; [ 2 ] |] in
  let req adj = { gen_request with Codec.topology = Codec.Adj adj; source = Some 0 } in
  Alcotest.(check string) "permuted adjacency, same key" (Daemon.cache_key (req adj_a))
    (Daemon.cache_key (req adj_b));
  let base = req adj_a in
  Alcotest.(check bool) "policy in key" true
    (Daemon.cache_key base <> Daemon.cache_key { base with Codec.policy = Codec.Emodel });
  Alcotest.(check bool) "rate in key" true
    (Daemon.cache_key base <> Daemon.cache_key { base with Codec.rate = Some 5 });
  Alcotest.(check bool) "source in key" true
    (Daemon.cache_key base <> Daemon.cache_key { base with Codec.source = Some 3 });
  Alcotest.(check bool) "start in key" true
    (Daemon.cache_key base <> Daemon.cache_key { base with Codec.start = 4 });
  (* Under Sync, the seed only picks the deployment; with an explicit
     adjacency it must not affect the key at all. *)
  Alcotest.(check string) "sync seed not in adj key" (Daemon.cache_key base)
    (Daemon.cache_key { base with Codec.seed = 99 });
  (* Under a duty cycle the seed drives the wake schedule: it must. *)
  let dc = { base with Codec.rate = Some 5 } in
  Alcotest.(check bool) "wake seed in duty-cycle key" true
    (Daemon.cache_key dc <> Daemon.cache_key { dc with Codec.seed = 99 });
  (* The interference model is part of the content address: a SINR or
     multi-channel solve must never share a line with the UDG one, and
     distinct channel counts are distinct addresses. *)
  Alcotest.(check bool) "model in key" true
    (Daemon.cache_key base
    <> Daemon.cache_key
         { base with Codec.model = Mlbs_phy.Interference.(Sinr default_sinr) });
  Alcotest.(check bool) "channel count in key" true
    (Daemon.cache_key { base with Codec.model = Mlbs_phy.Interference.Multichannel 2 }
    <> Daemon.cache_key { base with Codec.model = Mlbs_phy.Interference.Multichannel 3 })

(* --------------------------- daemon e2e ---------------------------- *)

let with_daemon ?(jobs = 2) ?(queue_capacity = 64) ?cache_dir ?(allowed_models = None) f =
  let dir = temp_dir () in
  let socket_path = Filename.concat dir "d.sock" in
  let cfg =
    {
      (Daemon.default_config ~socket_path) with
      Daemon.jobs;
      queue_capacity;
      cache_capacity = 32;
      cache_dir;
      allowed_models;
    }
  in
  let d = Daemon.start cfg in
  let finish () =
    Daemon.stop d;
    Daemon.wait d;
    rm_rf dir
  in
  Fun.protect ~finally:finish (fun () -> f socket_path)

let connect path =
  let c, `Version _, `Match m = Client.connect (Client.Unix_socket path) in
  Alcotest.(check bool) "client and server builds match" true m;
  c

let test_daemon_serves_and_caches () =
  with_daemon @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.request c gen_request with
  | Client.Ok ok ->
      Alcotest.(check bool) "first solve is a miss" false ok.Codec.cache_hit;
      let _, direct = Daemon.solve gen_request in
      Alcotest.(check string) "byte-identical to direct scheduler"
        (Codec.schedule_bytes direct)
        (Codec.schedule_bytes ok.Codec.schedule)
  | _ -> Alcotest.fail "expected Ok");
  (match Client.request c gen_request with
  | Client.Ok ok ->
      Alcotest.(check bool) "repeat is a hit" true ok.Codec.cache_hit;
      let _, direct = Daemon.solve gen_request in
      Alcotest.(check string) "hit still byte-identical"
        (Codec.schedule_bytes direct)
        (Codec.schedule_bytes ok.Codec.schedule)
  | _ -> Alcotest.fail "expected Ok");
  let stats = Client.stats c in
  Alcotest.(check bool) "stats has request counter" true
    (List.mem_assoc "server/requests" stats);
  Alcotest.(check bool) "two requests counted" true
    (List.assoc "server/requests" stats >= 2);
  (* The cold miss above ran the Strong-mode search, so the Stats
     frame must surface the search core's counters alongside the
     daemon's own. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exported") true (List.mem_assoc name stats))
    [ "search/states"; "search/tt_hit"; "search/tt_miss";
      "search/bound_prune_ecc"; "search/dominance_prunes" ];
  Alcotest.(check bool) "cold solve explored states" true
    (List.assoc "search/states" stats > 0)

let test_daemon_duty_cycle_and_explicit_source () =
  with_daemon @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let req = { gen_request with Codec.rate = Some 5; source = Some 0; policy = Codec.Emodel } in
  match Client.request c req with
  | Client.Ok ok ->
      let _, direct = Daemon.solve req in
      Alcotest.(check string) "duty-cycle reply byte-identical"
        (Codec.schedule_bytes direct)
        (Codec.schedule_bytes ok.Codec.schedule);
      Alcotest.(check int) "source honoured" 0 (Schedule.source ok.Codec.schedule)
  | _ -> Alcotest.fail "expected Ok"

let test_daemon_rejects_bad_requests () =
  with_daemon @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.request c { gen_request with Codec.source = Some 1000 } with
  | Client.Error _ -> ()
  | _ -> Alcotest.fail "out-of-range source must be an error reply");
  (* The connection survives an error reply. *)
  match Client.request c gen_request with
  | Client.Ok _ -> ()
  | _ -> Alcotest.fail "connection must survive an error reply"

let test_daemon_sheds_overload () =
  (* queue_capacity 0: every miss is shed with an explicit reject frame
     carrying a retry hint — the daemon must never hang. *)
  with_daemon ~jobs:1 ~queue_capacity:0 @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.request c gen_request with
  | Client.Rejected { retry_after_ms } ->
      Alcotest.(check bool) "positive retry hint" true (retry_after_ms > 0)
  | _ -> Alcotest.fail "expected Rejected"

let test_daemon_warm_restart () =
  let dir = temp_dir () in
  let key = Daemon.cache_key gen_request in
  with_daemon ~cache_dir:(Filename.concat dir "cache") (fun socket ->
      let c = connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match Client.request c gen_request with
      | Client.Ok ok -> Alcotest.(check bool) "cold miss" false ok.Codec.cache_hit
      | _ -> Alcotest.fail "expected Ok");
  (* Same cache_dir, fresh daemon: the entry must come back from disk. *)
  with_daemon ~cache_dir:(Filename.concat dir "cache") (fun socket ->
      let c = connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match Client.request c gen_request with
      | Client.Ok ok ->
          Alcotest.(check bool) "warm hit" true ok.Codec.cache_hit;
          let _, direct = Daemon.solve gen_request in
          Alcotest.(check string) "disk round-trip byte-identical"
            (Codec.schedule_bytes direct)
            (Codec.schedule_bytes ok.Codec.schedule)
      | _ -> Alcotest.fail "expected Ok");
  ignore key;
  rm_rf dir

let test_daemon_concurrent_clients () =
  with_daemon ~jobs:2 @@ fun socket ->
  let expected = Hashtbl.create 8 in
  List.iter
    (fun seed ->
      let req = { gen_request with Codec.seed } in
      let _, s = Daemon.solve req in
      Hashtbl.replace expected seed (Codec.schedule_bytes s))
    [ 1; 2; 3; 4 ];
  let errors = Atomic.make 0 in
  let worker w () =
    let c, _, _ = Client.connect (Client.Unix_socket socket) in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    for i = 0 to 19 do
      let seed = 1 + ((w + i) mod 4) in
      match Client.request_retry ~attempts:8 c { gen_request with Codec.seed } with
      | Client.Ok ok ->
          if Codec.schedule_bytes ok.Codec.schedule <> Hashtbl.find expected seed then
            Atomic.incr errors
      | _ -> Atomic.incr errors
    done
  in
  let threads = List.init 4 (fun w -> Thread.create (worker w) ()) in
  List.iter Thread.join threads;
  Alcotest.(check int) "80 concurrent requests all byte-identical" 0 (Atomic.get errors)

let test_daemon_reschedule () =
  (* Added edges only: never disconnects, so the repair path always
     engages. The reply must be byte-identical to solving the derived
     request directly, and must share that request's cache line. *)
  let delta =
    { Codec.d_added = [ (0, 7); (3, 11); (20, 41) ]; d_removed = []; d_rewired = [] }
  in
  with_daemon @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* Prime the base entry so the daemon repairs rather than cold-solves. *)
  (match Client.request c gen_request with
  | Client.Ok _ -> ()
  | _ -> Alcotest.fail "expected Ok for base request");
  let derived = Daemon.derived_request gen_request delta in
  (match Client.reschedule c ~base:gen_request ~delta with
  | Client.Ok ok ->
      Alcotest.(check bool) "repair is a cache miss" false ok.Codec.cache_hit;
      let _, direct = Daemon.solve derived in
      Alcotest.(check string) "repair byte-identical to derived solve"
        (Codec.schedule_bytes direct)
        (Codec.schedule_bytes ok.Codec.schedule)
  | _ -> Alcotest.fail "expected Ok for reschedule");
  (* The repaired entry was filed under the derived request's content
     address: both a repeat reschedule and the plain derived request
     must hit it. *)
  (match Client.reschedule c ~base:gen_request ~delta with
  | Client.Ok ok -> Alcotest.(check bool) "repeat reschedule hits" true ok.Codec.cache_hit
  | _ -> Alcotest.fail "expected Ok for repeat reschedule");
  (match Client.request c derived with
  | Client.Ok ok -> Alcotest.(check bool) "derived request hits" true ok.Codec.cache_hit
  | _ -> Alcotest.fail "expected Ok for derived request");
  let stats = Client.stats c in
  Alcotest.(check bool) "warmstart counters exported" true
    (List.mem_assoc "server/warmstart/hit" stats
    && List.mem_assoc "server/warmstart/miss" stats);
  Alcotest.(check bool) "searchful solves counted" true
    (List.assoc "server/warmstart/hit" stats + List.assoc "server/warmstart/miss" stats >= 2);
  Alcotest.(check bool) "repair histogram observed" true
    (match List.assoc_opt "server/repair_ms" stats with Some n -> n >= 1 | None -> false)

let test_daemon_reschedule_bad_delta () =
  with_daemon @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* Out-of-range endpoint: an error reply, not a wedged connection. *)
  let bad = { Codec.d_added = [ (0, 5000) ]; d_removed = []; d_rewired = [] } in
  (match Client.reschedule c ~base:gen_request ~delta:bad with
  | Client.Error _ -> ()
  | _ -> Alcotest.fail "out-of-range delta must be an error reply");
  match Client.request c gen_request with
  | Client.Ok _ -> ()
  | _ -> Alcotest.fail "connection must survive a bad delta"

let test_daemon_model_keyed_cache () =
  (* Same topology, policy and source under a different interference
     model must never share a cache line: the UDG hit must not leak
     into the SINR request, and each reply stays byte-identical to the
     direct solve under its own model. *)
  let sinr = { gen_request with Codec.model = Mlbs_phy.Interference.(Sinr default_sinr) } in
  with_daemon @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.request c gen_request with
  | Client.Ok ok -> Alcotest.(check bool) "udg cold solve misses" false ok.Codec.cache_hit
  | _ -> Alcotest.fail "expected Ok for udg request");
  (match Client.request c gen_request with
  | Client.Ok ok -> Alcotest.(check bool) "udg repeat hits" true ok.Codec.cache_hit
  | _ -> Alcotest.fail "expected Ok for udg repeat");
  (match Client.request c sinr with
  | Client.Ok ok ->
      Alcotest.(check bool) "sinr request misses the udg line" false ok.Codec.cache_hit;
      let _, direct = Daemon.solve sinr in
      Alcotest.(check string) "sinr reply byte-identical to direct solve"
        (Codec.schedule_bytes direct)
        (Codec.schedule_bytes ok.Codec.schedule)
  | _ -> Alcotest.fail "expected Ok for sinr request");
  match Client.request c sinr with
  | Client.Ok ok -> Alcotest.(check bool) "sinr repeat hits its own line" true ok.Codec.cache_hit
  | _ -> Alcotest.fail "expected Ok for sinr repeat"

let test_daemon_serves_every_model () =
  (* Cold solve and reschedule repair per backend: both replies must be
     byte-identical to the reference path bound to the same model. *)
  let delta = { Codec.d_added = [ (0, 7); (3, 11) ]; d_removed = []; d_rewired = [] } in
  List.iter
    (fun model ->
      let id = Mlbs_phy.Interference.to_string model in
      let req = { gen_request with Codec.model } in
      with_daemon @@ fun socket ->
      let c = connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (match Client.request c req with
      | Client.Ok ok ->
          let _, direct = Daemon.solve req in
          Alcotest.(check string)
            (id ^ " solve byte-identical to direct scheduler")
            (Codec.schedule_bytes direct)
            (Codec.schedule_bytes ok.Codec.schedule)
      | _ -> Alcotest.fail ("expected Ok under " ^ id));
      match Client.reschedule c ~base:req ~delta with
      | Client.Ok ok ->
          let _, direct = Daemon.solve (Daemon.derived_request req delta) in
          Alcotest.(check string)
            (id ^ " repair byte-identical to derived solve")
            (Codec.schedule_bytes direct)
            (Codec.schedule_bytes ok.Codec.schedule)
      | _ -> Alcotest.fail ("expected Ok for reschedule under " ^ id))
    Mlbs_phy.Interference.[ Sinr default_sinr; Multichannel 3 ]

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_daemon_allowed_models () =
  with_daemon ~allowed_models:(Some [ Mlbs_phy.Interference.Udg ]) @@ fun socket ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let mc = { gen_request with Codec.model = Mlbs_phy.Interference.Multichannel 2 } in
  (match Client.request c mc with
  | Client.Error msg ->
      Alcotest.(check bool) "refusal names the model" true (contains_substring msg "mc:2")
  | _ -> Alcotest.fail "disallowed model must be an error reply");
  (match Client.reschedule c ~base:mc
           ~delta:{ Codec.d_added = [ (0, 7) ]; d_removed = []; d_rewired = [] }
   with
  | Client.Error _ -> ()
  | _ -> Alcotest.fail "disallowed model must be refused on reschedule too");
  match Client.request c gen_request with
  | Client.Ok _ -> ()
  | _ -> Alcotest.fail "allowed model must still be served"

let test_daemon_shutdown_frame () =
  let dir = temp_dir () in
  let socket_path = Filename.concat dir "d.sock" in
  let d = Daemon.start (Daemon.default_config ~socket_path) in
  let c, _, _ = Client.connect (Client.Unix_socket socket_path) in
  Client.shutdown c;
  Client.close c;
  Daemon.wait d;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket_path);
  rm_rf dir

(* A socket file left behind by a crashed daemon (no listener) must not
   block the next start; a socket with a live listener must. *)
let test_daemon_stale_socket () =
  let dir = temp_dir () in
  let socket_path = Filename.concat dir "d.sock" in
  (* Simulate a crash: bind + listen, then close WITHOUT unlinking. *)
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket_path);
  Unix.listen fd 1;
  Unix.close fd;
  Alcotest.(check bool) "stale socket file exists" true (Sys.file_exists socket_path);
  let d = Daemon.start (Daemon.default_config ~socket_path) in
  let c = connect socket_path in
  (match Client.request c gen_request with
  | Client.Ok _ -> ()
  | _ -> Alcotest.fail "daemon behind a reclaimed socket must serve");
  Client.close c;
  Daemon.stop d;
  Daemon.wait d;
  rm_rf dir

let test_daemon_live_socket_not_clobbered () =
  let dir = temp_dir () in
  let socket_path = Filename.concat dir "d.sock" in
  let d = Daemon.start (Daemon.default_config ~socket_path) in
  (match Daemon.start (Daemon.default_config ~socket_path) with
  | _ -> Alcotest.fail "second daemon on a live socket must fail to start"
  | exception Failure msg ->
      Alcotest.(check bool) "error names the socket" true
        (let re = socket_path in
         String.length msg >= String.length re
         && String.sub msg 0 (String.length re) = re));
  (* The refusal must not have unlinked the live daemon's socket. *)
  let c = connect socket_path in
  (match Client.request c gen_request with
  | Client.Ok _ -> ()
  | _ -> Alcotest.fail "first daemon must survive the failed second start");
  Client.close c;
  Daemon.stop d;
  Daemon.wait d;
  rm_rf dir

let () =
  Alcotest.run "server"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "malformed" `Quick test_codec_malformed;
          Alcotest.test_case "framing" `Quick test_codec_framing;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "zero capacity" `Quick test_cache_zero_capacity;
          Alcotest.test_case "concurrent domains" `Quick test_cache_concurrent_domains;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "roundtrip" `Quick test_cache_persistence_roundtrip;
          Alcotest.test_case "missing dir" `Quick test_load_cache_missing_dir;
        ] );
      ( "keys",
        [ Alcotest.test_case "content addressing" `Quick test_cache_key_content_addressing ] );
      ( "daemon",
        [
          Alcotest.test_case "serves and caches" `Quick test_daemon_serves_and_caches;
          Alcotest.test_case "duty cycle + source" `Quick test_daemon_duty_cycle_and_explicit_source;
          Alcotest.test_case "bad requests" `Quick test_daemon_rejects_bad_requests;
          Alcotest.test_case "overload shedding" `Quick test_daemon_sheds_overload;
          Alcotest.test_case "warm restart" `Quick test_daemon_warm_restart;
          Alcotest.test_case "concurrent clients" `Quick test_daemon_concurrent_clients;
          Alcotest.test_case "reschedule" `Quick test_daemon_reschedule;
          Alcotest.test_case "reschedule bad delta" `Quick test_daemon_reschedule_bad_delta;
          Alcotest.test_case "model-keyed cache" `Quick test_daemon_model_keyed_cache;
          Alcotest.test_case "serves every model" `Quick test_daemon_serves_every_model;
          Alcotest.test_case "allowed models" `Quick test_daemon_allowed_models;
          Alcotest.test_case "shutdown frame" `Quick test_daemon_shutdown_frame;
          Alcotest.test_case "stale socket reclaimed" `Quick test_daemon_stale_socket;
          Alcotest.test_case "live socket not clobbered" `Quick
            test_daemon_live_socket_not_clobbered;
        ] );
    ]
