(* The Strong-mode search machinery must be invisible in the results:
   the admissible bounds never exceed the true optimum, the
   transposition table answers exactly like the naive memo it replaced,
   and a Strong plan is byte-identical to a Classic one whenever the
   search stays exact. *)

module Bitset = Mlbs_util.Bitset
module Model = Mlbs_core.Model
module Choices = Mlbs_core.Choices
module Istate = Mlbs_core.Istate
module Bounds = Mlbs_core.Bounds
module Ttable = Mlbs_core.Ttable
module Mcounter = Mlbs_core.Mcounter
module Schedule = Mlbs_core.Schedule

let classic =
  { Mcounter.max_states = 1_000_000; lookahead = 2; beam = 4; mode = Classic }

let strong = { classic with Mcounter.mode = Strong }

let prop ?(count = 60) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_walk gen_model =
  QCheck2.Gen.(pair gen_model (list_size (int_bound 12) (int_bound 1000)))

(* ------------------------ bound admissibility ---------------------- *)

(* At a position (W, slot), [Bounds.remaining] promises that any
   completion whose first advance happens at active slot t finishes at
   slot >= t + r - 1. Check it against the exact optimum at the root
   and at every position of a random greedy-choice walk. *)
let check_admissible model st ~slot =
  let w = Istate.w st in
  let r, _ = Bounds.remaining st in
  if Istate.complete st then Alcotest.(check int) "complete => 0" 0 r
  else begin
    let e = Mcounter.evaluate model Choices.Greedy ~budget:classic ~w ~slot in
    if e.Mcounter.exact then
      match Istate.next_active_slot st ~after:(slot - 1) with
      | None -> Alcotest.fail "incomplete position with no active slot"
      | Some t ->
          if e.Mcounter.finish < t + r - 1 then
            Alcotest.failf "bound %d refutes optimum %d (first advance at %d)" r
              e.Mcounter.finish t
  end

let bound_admissible ((model, _), moves) =
  let n = Model.n_nodes model in
  let st = Istate.create n in
  Istate.reset st model ~w:(Model.initial_w model ~source:0);
  let slot = ref 1 in
  check_admissible model st ~slot:!slot;
  List.iter
    (fun r ->
      if not (Istate.complete st) then
        match Istate.next_active_slot st ~after:(!slot - 1) with
        | None -> ()
        | Some t ->
            let classes = Istate.greedy_classes st ~slot:t in
            if classes <> [] then begin
              Istate.apply st ~senders:(List.nth classes (r mod List.length classes));
              slot := t + 1;
              check_admissible model st ~slot:!slot
            end)
    moves;
  true

(* ----------------- transposition table equivalence ----------------- *)

(* Replay a random op sequence against a [Hashtbl] oracle. Sets live in
   capacity 30, so an int bitmask is a faithful content key. *)
let mask set = Bitset.fold (fun i acc -> acc lor (1 lsl i)) set 0

let gen_tt_ops =
  QCheck2.Gen.(
    let op =
      let* members = list_size (int_bound 8) (int_bound 29) in
      let* slot = int_bound 3 in
      let* v = int_bound 1000 in
      let* is_add = bool in
      return (members, slot, v, is_add)
    in
    pair (int_bound 2) (list_size (int_bound 120) op))

(* [cap_choice]: 0 = unbounded, 1 = tiny bounded (8), 2 = bounded (40). *)
let tt_matches_naive (cap_choice, ops) =
  let max_entries = [| 0; 8; 40 |].(cap_choice) in
  let bounded = max_entries > 0 in
  let t = Ttable.create ~max_entries () in
  let naive = Hashtbl.create 64 in
  List.iter
    (fun (members, slot, v, is_add) ->
      let set = Bitset.of_list 30 members in
      let h = Bitset.hash set in
      if is_add then begin
        Ttable.add t ~h ~slot ~set v;
        (* A bounded table may decline the insert, but if the key is
           resident [add] replaces in place — so a later hit still
           returns the latest value. Only track keys the table kept. *)
        if Ttable.find t ~h ~slot ~set = Some v then
          Hashtbl.replace naive (mask set, slot) v
        else if bounded then Hashtbl.remove naive (mask set, slot)
        else Alcotest.fail "unbounded table dropped an insert"
      end
      else
        let got = Ttable.find t ~h ~slot ~set in
        let expected = Hashtbl.find_opt naive (mask set, slot) in
        if bounded then (
          (* Value-safe: a bounded table may forget, never lie. *)
          match got with
          | None -> ()
          | Some _ ->
              Alcotest.(check (option int)) "bounded hit is truthful" expected got)
        else Alcotest.(check (option int)) "unbounded find" expected got)
    ops;
  (if not bounded then
     let live = Hashtbl.length naive in
     Alcotest.(check int) "length" live (Ttable.length t));
  true

let find_union_agrees (base_members, cov_members, slot, v) =
  let base = Bitset.of_list 30 base_members in
  let cov = Bitset.of_list 30 cov_members in
  let u = Bitset.union base cov in
  let t = Ttable.create () in
  let h_union = Bitset.hash_union base cov (Bitset.hash base) in
  Alcotest.(check (option int))
    "miss before insert" None
    (Ttable.find_union t ~h:h_union ~slot ~base ~cov);
  Ttable.add t ~h:(Bitset.hash u) ~slot ~set:u v;
  Alcotest.(check (option int))
    "find_union = find on the materialised union" (Some v)
    (Ttable.find_union t ~h:h_union ~slot ~base ~cov);
  true

(* -------------------- Strong/Classic agreement --------------------- *)

let plans_agree space ((model, _) : Model.t * int) =
  let ec =
    Mcounter.evaluate model space ~budget:classic
      ~w:(Model.initial_w model ~source:0) ~slot:1
  in
  let a = Mcounter.plan model space ~budget:classic ~source:0 ~start:1 in
  let b = Mcounter.plan model space ~budget:strong ~source:0 ~start:1 in
  (not ec.Mcounter.exact)
  || (Schedule.finish a = Schedule.finish b && Schedule.steps a = Schedule.steps b)

let evaluations_agree space ((model, _) : Model.t * int) =
  let w = Model.initial_w model ~source:0 in
  let ec = Mcounter.evaluate model space ~budget:classic ~w ~slot:1 in
  let es = Mcounter.evaluate model space ~budget:strong ~w ~slot:1 in
  (not (ec.Mcounter.exact && es.Mcounter.exact))
  || ec.Mcounter.finish = es.Mcounter.finish

let gen_sync = Test_support.gen_sync_model
let gen_async = Test_support.gen_async_model

let () =
  Alcotest.run "bounds"
    [
      ( "admissibility",
        [
          prop ~count:80 "sync: bound never refutes the optimum"
            (gen_walk gen_sync) bound_admissible;
          prop ~count:50 "async: bound never refutes the optimum"
            (gen_walk gen_async) bound_admissible;
        ] );
      ( "ttable",
        [
          prop ~count:200 "random ops match a Hashtbl oracle" gen_tt_ops
            tt_matches_naive;
          prop ~count:200 "find_union probes the union key"
            QCheck2.Gen.(
              quad
                (list_size (int_bound 8) (int_bound 29))
                (list_size (int_bound 8) (int_bound 29))
                (int_bound 3) (int_bound 1000))
            find_union_agrees;
        ] );
      ( "strong-vs-classic",
        [
          prop ~count:60 "sync greedy plans byte-identical" gen_sync
            (plans_agree Choices.Greedy);
          prop ~count:40 "sync OPT plans byte-identical" gen_sync
            (plans_agree (Choices.All { max_sets = 4096 }));
          prop ~count:40 "async greedy plans byte-identical" gen_async
            (plans_agree Choices.Greedy);
          prop ~count:60 "sync evaluations agree" gen_sync
            (evaluations_agree Choices.Greedy);
          prop ~count:40 "async evaluations agree" gen_async
            (evaluations_agree Choices.Greedy);
        ] );
    ]
