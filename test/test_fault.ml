module Bitset = Mlbs_util.Bitset
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Scheduler = Mlbs_core.Scheduler
module Fault = Mlbs_sim.Fault
module Radio = Mlbs_sim.Radio
module Validate = Mlbs_sim.Validate
module Hello = Mlbs_proto.Hello
module E_protocol = Mlbs_proto.E_protocol
module Broadcast_protocol = Mlbs_proto.Broadcast_protocol
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Fixtures = Mlbs_workload.Fixtures

let plain ?(crashes = []) ?(jitter = 0) ?(seed = 7) loss =
  Fault.make { Fault.loss; crashes; wake_jitter = jitter; seed }

let bernoulli ?crashes ?jitter ?seed p = plain ?crashes ?jitter ?seed (Fault.Bernoulli p)

let fig2_model () = Model.create Fixtures.fig2.Fixtures.net Model.Sync

(* ------------------------- the plan itself ------------------------- *)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let test_make_validation () =
  Alcotest.(check bool) "loss > 1 rejected" true
    (raises_invalid (fun () -> bernoulli 1.5));
  Alcotest.(check bool) "negative loss rejected" true
    (raises_invalid (fun () -> bernoulli (-0.1)));
  Alcotest.(check bool) "negative jitter rejected" true
    (raises_invalid (fun () -> bernoulli ~jitter:(-1) 0.1));
  Alcotest.(check bool) "recover <= at rejected" true
    (raises_invalid (fun () ->
         bernoulli ~crashes:[ { Fault.node = 1; at = 5; recover = Some 5 } ] 0.))

let test_noop_recognition () =
  Alcotest.(check bool) "none" true (Fault.is_noop Fault.none);
  Alcotest.(check bool) "Bernoulli 0" true (Fault.is_noop (bernoulli 0.));
  Alcotest.(check bool) "Bernoulli 0.1" false (Fault.is_noop (bernoulli 0.1));
  Alcotest.(check bool) "a crash" false
    (Fault.is_noop
       (bernoulli ~crashes:[ { Fault.node = 0; at = 1; recover = None } ] 0.));
  Alcotest.(check bool) "jitter" false (Fault.is_noop (bernoulli ~jitter:1 0.))

let test_crash_windows () =
  let f =
    bernoulli
      ~crashes:
        [
          { Fault.node = 2; at = 5; recover = Some 9 };
          { Fault.node = 3; at = 4; recover = None };
        ]
      0.
  in
  Alcotest.(check bool) "alive before" true (Fault.alive f ~slot:4 2);
  Alcotest.(check bool) "dead at crash slot" false (Fault.alive f ~slot:5 2);
  Alcotest.(check bool) "dead mid-window" false (Fault.alive f ~slot:8 2);
  Alcotest.(check bool) "recovered" true (Fault.alive f ~slot:9 2);
  Alcotest.(check bool) "end state sees recovery" true (Fault.alive f ~slot:max_int 2);
  Alcotest.(check bool) "no recovery: dead forever" false (Fault.alive f ~slot:max_int 3);
  Alcotest.(check bool) "unnamed node untouched" true (Fault.alive f ~slot:max_int 0)

let ge = Fault.Gilbert_elliott { p_gb = 0.3; p_bg = 0.4; loss_good = 0.05; loss_bad = 0.8 }

let grid =
  List.concat_map
    (fun slot ->
      List.concat_map
        (fun tx -> List.filter_map (fun rx -> if tx = rx then None else Some (slot, tx, rx)) [ 0; 1; 2; 3; 4 ])
        [ 0; 1; 2; 3; 4 ])
    [ 1; 2; 3; 5; 8; 13; 21 ]

let test_delivers_order_independent () =
  (* The Gilbert–Elliott chain memoises per-link state lazily; querying
     two fresh plans (same spec) in opposite orders must agree. *)
  let ask f (slot, tx, rx) = Fault.delivers ~slot ~tx ~rx f in
  let forward = List.map (ask (plain ge)) grid in
  let backward = List.rev (List.map (ask (plain ge)) (List.rev grid)) in
  Alcotest.(check (list bool)) "same answers" forward backward

let test_rolls_coupled_across_rates () =
  (* Same seed: any packet that survives Bernoulli 0.4 also survives
     Bernoulli 0.1 — the coupling behind the monotonicity property. *)
  let hi = bernoulli 0.4 and lo = bernoulli 0.1 in
  List.iter
    (fun (slot, tx, rx) ->
      if Fault.delivers ~slot ~tx ~rx hi then
        Alcotest.(check bool)
          (Printf.sprintf "slot %d %d->%d survives the lower rate" slot tx rx)
          true
          (Fault.delivers ~slot ~tx ~rx lo))
    grid

let test_channels_decorrelated () =
  (* Data, beacon and E-construction rolls must differ somewhere. *)
  let f = bernoulli 0.5 in
  let differs =
    List.exists
      (fun (slot, tx, rx) ->
        Fault.delivers ~slot ~tx ~rx f
        <> Fault.delivers ~channel:1 ~slot ~tx ~rx f)
      grid
  in
  Alcotest.(check bool) "channel 0 and 1 decorrelated" true differs

let test_sample_crashes () =
  let none =
    Fault.sample_crashes ~n_nodes:20 ~fraction:0. ~window:(1, 10) ~seed:3 ()
  in
  Alcotest.(check int) "fraction 0 kills nobody" 0 (List.length none);
  let all =
    Fault.sample_crashes ~n_nodes:20 ~fraction:1. ~window:(1, 10) ~avoid:[ 0; 7 ] ~seed:3 ()
  in
  Alcotest.(check int) "fraction 1 kills all but avoided" 18 (List.length all);
  List.iter
    (fun { Fault.node; at; recover } ->
      Alcotest.(check bool) "avoided spared" true (node <> 0 && node <> 7);
      Alcotest.(check bool) "slot in window" true (at >= 1 && at <= 10);
      Alcotest.(check bool) "no recovery" true (recover = None))
    all;
  let again =
    Fault.sample_crashes ~n_nodes:20 ~fraction:1. ~window:(1, 10) ~avoid:[ 0; 7 ] ~seed:3 ()
  in
  Alcotest.(check bool) "deterministic in the seed" true (all = again)

let test_zero_jitter_is_identity () =
  let sched = Wake_schedule.create ~rate:5 ~n_nodes:4 ~seed:2 () in
  Alcotest.(check bool) "physically unchanged" true
    (Fault.jittered (bernoulli 0.3) sched == sched)

(* ------------------- replay + validator under faults ---------------- *)

let test_noop_replay_identity () =
  let m = fig2_model () in
  let s =
    Schedule.make ~n_nodes:5 ~source:0 ~start:1
      [
        { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1; 2 ] };
        { Schedule.slot = 2; senders = [ 1 ]; informed = [ 3; 4 ] };
      ]
  in
  let without = Radio.replay m s in
  let with_noop = Radio.replay ~faults:(bernoulli 0.) m s in
  Alcotest.(check (list int)) "same informed"
    (Bitset.elements without.Radio.informed)
    (Bitset.elements with_noop.Radio.informed);
  Alcotest.(check (list string)) "same violations" without.Radio.violations
    with_noop.Radio.violations;
  Alcotest.(check int) "nothing lost" 0 (List.length with_noop.Radio.lost);
  Alcotest.(check int) "nothing dropped" 0 (List.length with_noop.Radio.dropped)

let test_check_under_faults_noop_full_coverage () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let sched = Mlbs_core.Gopt.plan m ~source ~start in
  let r = Validate.check_under_faults m ~faults:Fault.none sched in
  Alcotest.(check bool) "ok" true r.Validate.ok;
  Alcotest.(check int) "all delivered" 12 r.Validate.delivered;
  Alcotest.(check int) "all alive" 12 r.Validate.alive;
  Alcotest.(check int) "nothing lost" 0 r.Validate.lost

(* --------------------- protocol under the plan ---------------------- *)

let steps_equal a b = Schedule.steps a = Schedule.steps b

let test_protocol_noop_identity () =
  let m = fig2_model () in
  let clean = Broadcast_protocol.run m ~source:0 ~start:1 in
  let noop = Broadcast_protocol.run ~faults:(bernoulli 0.) m ~source:0 ~start:1 in
  Alcotest.(check bool) "same schedule" true
    (steps_equal clean.Broadcast_protocol.schedule noop.Broadcast_protocol.schedule);
  Alcotest.(check int) "same latency" clean.Broadcast_protocol.latency
    noop.Broadcast_protocol.latency;
  Alcotest.(check int) "same beacons" clean.Broadcast_protocol.beacon_messages
    noop.Broadcast_protocol.beacon_messages;
  Alcotest.(check int) "same retransmissions" clean.Broadcast_protocol.retransmissions
    noop.Broadcast_protocol.retransmissions;
  Alcotest.(check int) "everyone delivered" 5 noop.Broadcast_protocol.delivered;
  Alcotest.(check int) "nobody gave up" 0 noop.Broadcast_protocol.gave_up;
  Alcotest.(check int) "nothing lost" 0 noop.Broadcast_protocol.lost_packets

let test_source_crash () =
  (* The source dies before its first slot and never recovers: no node
     can ever hold the message, so the run must end by give-up with only
     the (dead) source informed — delivered counts alive nodes only. *)
  let m = fig2_model () in
  let faults = bernoulli ~crashes:[ { Fault.node = 0; at = 1; recover = None } ] 0. in
  let r = Broadcast_protocol.run ~faults m ~source:0 ~start:1 in
  Alcotest.(check int) "nobody alive delivered" 0 r.Broadcast_protocol.delivered;
  Alcotest.(check int) "no data ever sent" 0
    (Schedule.n_transmissions r.Broadcast_protocol.schedule)

let test_partition () =
  (* fig2 edges: 0-1, 0-2, 1-3, 2-3, 1-4. Killing 1 and 2 forever cuts
     {3, 4} off from the source; the protocol must terminate gracefully
     with exactly the source delivered among the three survivors. *)
  let m = fig2_model () in
  let faults =
    bernoulli
      ~crashes:
        [
          { Fault.node = 1; at = 1; recover = None };
          { Fault.node = 2; at = 1; recover = None };
        ]
      0.
  in
  let r = Broadcast_protocol.run ~faults m ~source:0 ~start:1 in
  Alcotest.(check int) "only the source delivered" 1 r.Broadcast_protocol.delivered;
  Alcotest.(check int) "the stuck holder gave up" 1 r.Broadcast_protocol.gave_up

let test_crash_recovery_amnesia () =
  (* Node 1 crashes, then rejoins with amnesia: its beacons advertise
     "not holding" again, which pulls a neighbour back into the greedy
     re-coloring (the lagged-relay path) until everyone is covered. *)
  let m = fig2_model () in
  let faults = bernoulli ~crashes:[ { Fault.node = 1; at = 2; recover = Some 40 } ] 0. in
  let r = Broadcast_protocol.run ~faults m ~source:0 ~start:1 in
  Alcotest.(check int) "everyone delivered in the end" 5 r.Broadcast_protocol.delivered;
  Alcotest.(check int) "nobody gave up" 0 r.Broadcast_protocol.gave_up

let test_retry_budget_bounds_transmissions () =
  (* Total loss: nothing ever delivers, so every holder (only the
     source) burns through its budget and gives up; each node appears
     at most max_attempts times among the data senders. *)
  let m = fig2_model () in
  let faults = bernoulli 1.0 in
  let r = Broadcast_protocol.run ~faults ~max_attempts:3 m ~source:0 ~start:1 in
  let sends = Hashtbl.create 8 in
  List.iter
    (fun s ->
      List.iter
        (fun u ->
          Hashtbl.replace sends u (1 + Option.value ~default:0 (Hashtbl.find_opt sends u)))
        s.Schedule.senders)
    (Schedule.steps r.Broadcast_protocol.schedule);
  Hashtbl.iter
    (fun u k ->
      Alcotest.(check bool) (Printf.sprintf "node %d within budget" u) true (k <= 3))
    sends;
  Alcotest.(check int) "only the source delivered" 1 r.Broadcast_protocol.delivered;
  Alcotest.(check bool) "somebody gave up" true (r.Broadcast_protocol.gave_up >= 1)

let test_protocol_schedule_audits_clean_under_loss () =
  (* The transmissions the protocol actually made must replay to the
     same story under the same plan: every reception conflict-free
     under the fault trace. *)
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let faults = bernoulli 0.2 in
  let r = Broadcast_protocol.run ~faults m ~source ~start in
  let audit =
    Validate.check_under_faults ~allow_resend:true m ~faults r.Broadcast_protocol.schedule
  in
  Alcotest.(check (list string)) "no violations" [] audit.Validate.violations;
  Alcotest.(check int) "replay agrees on delivery" r.Broadcast_protocol.delivered
    audit.Validate.delivered

(* -------------------- E construction under loss --------------------- *)

let test_e_protocol_under_loss () =
  let { Fixtures.net; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let views = (Hello.discover net).Hello.views in
  let clean = E_protocol.construct m views in
  let lossy = E_protocol.construct ~faults:(bernoulli 0.3) m views in
  Alcotest.(check bool) "same fixpoint" true
    (clean.E_protocol.values = lossy.E_protocol.values);
  Alcotest.(check bool) "loss costs messages" true
    (lossy.E_protocol.messages >= clean.E_protocol.messages);
  Alcotest.(check bool) "retries happened" true (lossy.E_protocol.retransmissions > 0);
  Alcotest.(check int) "clean run retries nothing" 0 clean.E_protocol.retransmissions

(* --------------------------- properties ----------------------------- *)

let prop ?(count = 40) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let props =
  [
    prop "delivery monotone non-increasing in loss rate"
      QCheck2.Gen.(
        triple Test_support.gen_sync_model (float_range 0. 0.5) (float_range 0. 0.5))
      (fun ((model, seed), p1, p2) ->
        let lo = min p1 p2 and hi = max p1 p2 in
        let sched = Scheduler.run model Scheduler.Baseline ~source:0 ~start:1 in
        let delivered p =
          (Validate.check_under_faults model ~faults:(bernoulli ~seed p) sched)
            .Validate.delivered
        in
        delivered hi <= delivered lo);
    prop ~count:20 "replay under a plan never mints violations on valid schedules"
      QCheck2.Gen.(pair Test_support.gen_sync_model (float_range 0. 0.4))
      (fun ((model, seed), p) ->
        let sched = Scheduler.run model Scheduler.Baseline ~source:0 ~start:1 in
        let r = Validate.check_under_faults model ~faults:(bernoulli ~seed p) sched in
        r.Validate.ok && r.Validate.delivered <= r.Validate.alive);
    prop ~count:15 "protocol terminates and audits clean under loss"
      QCheck2.Gen.(pair Test_support.gen_sync_model (float_range 0. 0.3))
      (fun ((model, seed), p) ->
        let faults = bernoulli ~seed p in
        let r = Broadcast_protocol.run ~faults model ~source:0 ~start:1 in
        let audit =
          Validate.check_under_faults ~allow_resend:true model ~faults
            r.Broadcast_protocol.schedule
        in
        audit.Validate.violations = []
        && r.Broadcast_protocol.delivered >= 1
        && r.Broadcast_protocol.delivered <= Model.n_nodes model);
  ]

(* The fault sweep mirrors its returned measurements into the metrics
   registry; the two accountings must agree exactly. *)
let test_run_faulty_matches_registry () =
  let module Experiment = Mlbs_workload.Experiment in
  let module Obs = Mlbs_obs.Obs in
  let module Metrics = Mlbs_obs.Metrics in
  Obs.enable ~metrics:true ~tracing:false ();
  Metrics.reset ();
  Fun.protect ~finally:Obs.disable (fun () ->
      let cfg = Mlbs_workload.Config.smoke in
      let inst = Experiment.make_instance cfg ~n:50 ~seed:1 in
      let ms = Experiment.run_faulty cfg ~inst_seed:1 ~loss:0.2 inst in
      let retx =
        List.fold_left
          (fun acc (m : Experiment.fault_measurement) -> acc + m.Experiment.retransmissions)
          0 ms
      in
      let energy_pm =
        List.fold_left
          (fun acc (m : Experiment.fault_measurement) ->
            acc + int_of_float (m.Experiment.energy_overhead *. 1000.))
          0 ms
      in
      Alcotest.(check int)
        "retransmissions mirrored" retx
        (Metrics.counter_value "experiment/fault_retransmissions");
      Alcotest.(check int)
        "energy overhead mirrored (per-mille)" energy_pm
        (Metrics.counter_value "experiment/fault_energy_pm");
      (* The protocol measurement's retransmissions also flow through the
         protocol's own counter (one clean + one faulty run recorded). *)
      let proto_retx =
        match List.find_opt (fun (m : Experiment.fault_measurement) -> m.Experiment.policy = "protocol") ms with
        | Some m -> m.Experiment.retransmissions
        | None -> Alcotest.fail "protocol measurement missing"
      in
      Alcotest.(check bool)
        "registry proto/retransmissions covers the faulty run" true
        (Metrics.counter_value "proto/retransmissions" >= proto_retx))

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "spec validation" `Quick test_make_validation;
          Alcotest.test_case "no-op recognition" `Quick test_noop_recognition;
          Alcotest.test_case "crash windows" `Quick test_crash_windows;
          Alcotest.test_case "order independence" `Quick test_delivers_order_independent;
          Alcotest.test_case "rolls coupled across rates" `Quick test_rolls_coupled_across_rates;
          Alcotest.test_case "channels decorrelated" `Quick test_channels_decorrelated;
          Alcotest.test_case "sample_crashes" `Quick test_sample_crashes;
          Alcotest.test_case "zero jitter is identity" `Quick test_zero_jitter_is_identity;
        ] );
      ( "replay",
        [
          Alcotest.test_case "no-op identity" `Quick test_noop_replay_identity;
          Alcotest.test_case "validator full coverage at no-op" `Quick
            test_check_under_faults_noop_full_coverage;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "no-op identity" `Quick test_protocol_noop_identity;
          Alcotest.test_case "source crash" `Quick test_source_crash;
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "crash + amnesiac recovery" `Quick test_crash_recovery_amnesia;
          Alcotest.test_case "retry budget bounds sends" `Quick
            test_retry_budget_bounds_transmissions;
          Alcotest.test_case "audit clean under loss" `Quick
            test_protocol_schedule_audits_clean_under_loss;
        ] );
      ("E construction", [ Alcotest.test_case "loss tolerated" `Quick test_e_protocol_under_loss ]);
      ( "telemetry",
        [
          Alcotest.test_case "run_faulty mirrors the registry" `Quick
            test_run_faulty_matches_registry;
        ] );
      ("properties", props);
    ]
