module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Scheduler = Mlbs_core.Scheduler
module Mcounter = Mlbs_core.Mcounter
module Baseline26 = Mlbs_core.Baseline26
module Baseline17 = Mlbs_core.Baseline17
module Bounds = Mlbs_core.Bounds
module Bfs = Mlbs_graph.Bfs
module Fixtures = Mlbs_workload.Fixtures
module Validate = Mlbs_sim.Validate
module Wake_schedule = Mlbs_dutycycle.Wake_schedule

let big_budget = { Mcounter.max_states = 1_000_000; lookahead = 2; beam = 4; mode = Classic }

(* ------------------------- baselines ------------------------------ *)

let test_baseline26_fig1 () =
  (* Layer synchronisation forbids the pipeline: the BFS from s has
     layers {s}, {0,1,2}, {3..7,10}, {8,9}; the layered baseline needs
     strictly more rounds than the pipelined optimum of 3. *)
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let plan = Baseline26.plan m ~source ~start in
  Validate.check_exn m plan;
  Alcotest.(check bool) "slower than OPT" true (Schedule.finish plan > 3)

let test_baseline26_layered_order () =
  (* Senders of deeper BFS layers never transmit before shallower layers
     finish. *)
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let dist = (Bfs.run (Model.graph m) ~source).Bfs.dist in
  let plan = Baseline26.plan m ~source ~start in
  let last_slot_of_layer = Hashtbl.create 8 in
  List.iter
    (fun step ->
      List.iter
        (fun u ->
          Hashtbl.replace last_slot_of_layer dist.(u)
            (max step.Schedule.slot
               (Option.value ~default:0 (Hashtbl.find_opt last_slot_of_layer dist.(u)))))
        step.Schedule.senders)
    (Schedule.steps plan);
  let rec check_layer l =
    match (Hashtbl.find_opt last_slot_of_layer l, Hashtbl.find_opt last_slot_of_layer (l + 1)) with
    | Some a, Some b ->
        Alcotest.(check bool) (Printf.sprintf "layer %d before %d" l (l + 1)) true (a < b);
        check_layer (l + 1)
    | _ -> ()
  in
  check_layer 0

let test_baseline26_rejects_async () =
  let fixture, sched = Fixtures.fig2_dc in
  let m = Model.create fixture.Fixtures.net (Model.Async sched) in
  Alcotest.check_raises "async rejected"
    (Invalid_argument "Baseline26.plan: synchronous model required") (fun () ->
      ignore (Baseline26.plan m ~source:0 ~start:1))

let test_baseline17_fig2dc () =
  let fixture, sched = Fixtures.fig2_dc in
  let m = Model.create fixture.Fixtures.net (Model.Async sched) in
  let plan = Baseline17.plan m ~source:fixture.Fixtures.source ~start:fixture.Fixtures.start in
  Validate.check_exn m plan;
  Alcotest.(check bool) "covers" true (Schedule.covers_all plan)

let test_baseline17_senders_at_own_wakes () =
  (* Every relay of the duty-cycle baseline transmits at one of its own
     wake slots, and BFS layers never interleave. *)
  let fixture, sched = Fixtures.fig2_dc in
  let m = Model.create fixture.Fixtures.net (Model.Async sched) in
  let plan = Baseline17.plan m ~source:fixture.Fixtures.source ~start:fixture.Fixtures.start in
  let dist = (Bfs.run (Model.graph m) ~source:fixture.Fixtures.source).Bfs.dist in
  let max_layer_slot = Hashtbl.create 4 in
  List.iter
    (fun step ->
      List.iter
        (fun u ->
          Alcotest.(check bool)
            (Printf.sprintf "sender %d awake at %d" u step.Schedule.slot)
            true
            (Wake_schedule.awake sched u ~slot:step.Schedule.slot);
          Hashtbl.replace max_layer_slot dist.(u)
            (max step.Schedule.slot
               (Option.value ~default:0 (Hashtbl.find_opt max_layer_slot dist.(u)))))
        step.Schedule.senders)
    (Schedule.steps plan);
  let rec layers_ordered l =
    match (Hashtbl.find_opt max_layer_slot l, Hashtbl.find_opt max_layer_slot (l + 1)) with
    | Some a, Some b ->
        Alcotest.(check bool) "layer order" true (a < b);
        layers_ordered (l + 1)
    | _ -> ()
  in
  layers_ordered 0

let test_baseline17_rejects_sync () =
  let m = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  Alcotest.check_raises "sync rejected"
    (Invalid_argument "Baseline17.plan: duty-cycle model required") (fun () ->
      ignore (Baseline17.plan m ~source:0 ~start:1))

(* ------------------------- dispatcher ----------------------------- *)

let test_names () =
  let async_sched = Wake_schedule.create ~rate:5 ~n_nodes:5 ~seed:1 () in
  Alcotest.(check string) "sync baseline" "26-approx"
    (Scheduler.name ~system:Model.Sync Scheduler.Baseline);
  Alcotest.(check string) "async baseline" "17-approx"
    (Scheduler.name ~system:(Model.Async async_sched) Scheduler.Baseline);
  Alcotest.(check string) "gopt" "G-OPT" (Scheduler.name ~system:Model.Sync Scheduler.gopt);
  Alcotest.(check string) "opt" "OPT" (Scheduler.name ~system:Model.Sync Scheduler.opt);
  Alcotest.(check string) "emodel" "E-model"
    (Scheduler.name ~system:Model.Sync Scheduler.Emodel)

let test_dispatch_runs_all_fig1 () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  List.iter
    (fun policy ->
      let plan = Scheduler.run m policy ~source ~start in
      Validate.check_exn m plan)
    Scheduler.all_policies

(* --------------------------- bounds ------------------------------- *)

let test_bound_formulas () =
  Alcotest.(check int) "sync" 7 (Bounds.opt_sync ~d:5);
  Alcotest.(check int) "async" 140 (Bounds.opt_async ~d:5 ~rate:10);
  Alcotest.(check int) "jiao" 1700 (Bounds.jiao17 ~d:5 ~rate:10);
  Alcotest.(check int) "chen" 130 (Bounds.chen26 ~d:5)

let test_source_depth_fig1 () =
  let { Fixtures.net; source; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  Alcotest.(check int) "d = 3" 3 (Bounds.source_depth m ~source)

(* ------------------------ properties ------------------------------ *)

let prop ?(count = 50) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let valid_and_complete model plan =
  Schedule.covers_all plan && (Validate.check model plan).Validate.ok

let props =
  [
    prop "all sync policies produce valid complete schedules"
      Test_support.gen_sync_model (fun (model, _) ->
        List.for_all
          (fun policy ->
            valid_and_complete model (Scheduler.run model policy ~source:0 ~start:1))
          Scheduler.all_policies);
    prop ~count:30 "all async policies produce valid complete schedules"
      Test_support.gen_async_model (fun (model, _) ->
        List.for_all
          (fun policy ->
            valid_and_complete model (Scheduler.run model policy ~source:0 ~start:1))
          Scheduler.all_policies);
    prop "Theorem 1: exact OPT elapsed < d + 2 (sync)" Test_support.gen_sync_model
      (fun (model, _) ->
        let e =
          Mcounter.evaluate model (Mlbs_core.Choices.All { max_sets = 4096 })
            ~budget:big_budget ~w:(Model.initial_w model ~source:0) ~slot:1
        in
        let d = Bounds.source_depth model ~source:0 in
        (not e.Mcounter.exact) || e.Mcounter.finish < Bounds.opt_sync ~d);
    prop "pipelined G-OPT never slower than the layered baseline (sync)"
      Test_support.gen_sync_model (fun (model, _) ->
        let b = Scheduler.run model Scheduler.Baseline ~source:0 ~start:1 in
        let g =
          Mcounter.evaluate model Mlbs_core.Choices.Greedy ~budget:big_budget
            ~w:(Model.initial_w model ~source:0) ~slot:1
        in
        (not g.Mcounter.exact) || g.Mcounter.finish <= Schedule.finish b);
    prop ~count:30 "Theorem 1: exact OPT elapsed < 2r(d+2) (async)"
      Test_support.gen_async_model (fun (model, _) ->
        let e =
          Mcounter.evaluate model (Mlbs_core.Choices.All { max_sets = 4096 })
            ~budget:big_budget ~w:(Model.initial_w model ~source:0) ~slot:1
        in
        let d = Bounds.source_depth model ~source:0 in
        let rate =
          match Model.system model with
          | Model.Async s -> Wake_schedule.rate s
          | Model.Sync -> assert false
        in
        (not e.Mcounter.exact) || e.Mcounter.finish < Bounds.opt_async ~d ~rate);
    prop "baseline26 sends each node at most once" Test_support.gen_sync_model
      (fun (model, _) ->
        let plan = Scheduler.run model Scheduler.Baseline ~source:0 ~start:1 in
        let senders = List.concat_map (fun s -> s.Schedule.senders) (Schedule.steps plan) in
        List.length senders = List.length (List.sort_uniq compare senders));
  ]

let () =
  Alcotest.run "schedulers"
    [
      ( "baselines",
        [
          Alcotest.test_case "26 on fig1" `Quick test_baseline26_fig1;
          Alcotest.test_case "26 layered order" `Quick test_baseline26_layered_order;
          Alcotest.test_case "26 rejects async" `Quick test_baseline26_rejects_async;
          Alcotest.test_case "17 on fig2dc" `Quick test_baseline17_fig2dc;
          Alcotest.test_case "17 senders at own wakes" `Quick test_baseline17_senders_at_own_wakes;
          Alcotest.test_case "17 rejects sync" `Quick test_baseline17_rejects_sync;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "all policies on fig1" `Quick test_dispatch_runs_all_fig1;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "formulas" `Quick test_bound_formulas;
          Alcotest.test_case "fig1 depth" `Quick test_source_depth_fig1;
        ] );
      ("properties", props);
    ]
